//! `spanner-serve` — the spanner-serving daemon (TCP wire protocol,
//! plus an optional HTTP/JSON facade over the same service).
//!
//! ```text
//! spanner-serve [--addr HOST:PORT] [--http-port PORT] [--workers N]
//!               [--queue N] [--cache N] [--shards N] [--cache-dir DIR]
//!               [--log-level LEVEL] [--trace-dir DIR]
//!               [--drain-timeout SECS] [--fault-plan PLAN]
//!               [--self-check [--http | --chaos | --graphs]]
//! ```
//!
//! `--log-level LEVEL` (error/warn/info/debug/trace, default `info`)
//! sets the threshold for the structured stderr log lines emitted via
//! [`dsa_runtime::obs`]. `--trace-dir DIR` exports the service's
//! bounded flight recorder — one JSONL line per job-lifecycle event,
//! tagged with a per-job trace id — to `DIR/trace-<pid>.jsonl`: a
//! background thread flushes every 2 s in serve mode, and the
//! self-check flavors export once on success.
//!
//! `--http-port PORT` additionally serves the HTTP/JSON facade
//! (`POST /v1/jobs`, `GET /v1/metrics`, `GET /healthz`) on the same
//! host as `--addr`, concurrently with the TCP listener and over the
//! *same* service — one cache, one worker pool, one coalescing map,
//! whichever surface a job arrives on. Port 0 asks for an ephemeral
//! port (the bound address is printed).
//!
//! `--shards N` makes every engine run execute with `N` in-iteration
//! shards (`0` = one per core), overriding per-request `shards`
//! headers. Responses are unaffected — the engine is
//! shard-count-deterministic — so this is purely a resource knob.
//!
//! `--cache-dir DIR` persists every completed result to an
//! append-only, checksummed record log in `DIR` and consults it on
//! cache misses, so a restarted server answers previously computed
//! instances byte-identically without re-running the engine (the log's
//! most recent records also warm the in-memory LRU at startup; a
//! corrupt or truncated log tail is dropped and counted, never fatal).
//!
//! Without `--self-check` the process binds the address (default
//! `127.0.0.1:7071`, port 0 for ephemeral), prints one
//! `listening <addr>` line (plus `http listening <addr>` with
//! `--http-port`), and serves until it receives SIGTERM or SIGINT —
//! then it **drains gracefully**: stops accepting, lets in-flight
//! requests finish (bounded by `--drain-timeout SECS`, default 10),
//! flushes the trace file, and exits 0. A drain that does not finish
//! inside the bound exits 1 so supervisors can tell abandonment from
//! a clean stop.
//!
//! `--fault-plan PLAN` arms the deterministic fault injector
//! ([`dsa_runtime::fault`]) with a seeded plan such as
//! `seed=42;store.append.err=0.5;engine.latency_ms=5@0.25;conn.drop=0.1`.
//! Injection can delay or abort engine runs, fail store I/O (demoting
//! the service to memory-only caching, `store_degraded` in metrics),
//! and drop connections mid-response — it can never change response
//! bytes.
//!
//! With `--self-check` it
//! binds ephemeral ports, drives all four variants plus a duplicate
//! through a loopback client, asserts the cache and the protocol
//! behave, prints `self-check ok`, and exits — the one-shot mode CI
//! uses. `--self-check --http` runs the HTTP flavor: all four
//! variants via `POST /v1/jobs`, cache byte-identity over response
//! bodies, a TCP+HTTP shared-cache check, and the
//! `jobs = hits + misses + coalesced` invariant read from
//! `/v1/metrics`. `--self-check --cache-dir DIR` runs the
//! *warm-restart* flavor instead: serve all four variants over TCP and
//! HTTP into a store at `DIR`, shut the service down, reopen the same
//! directory, and assert that every re-submission returns
//! byte-identical bodies on both surfaces with `disk_hits > 0` and the
//! metrics invariant intact. `--self-check --chaos` runs the *chaos*
//! flavor: compute fault-free reference responses, then hammer a
//! deliberately tiny service (one worker, depth-1 queue) through
//! retrying TCP and HTTP clients while a seeded fault plan injects
//! store failures, engine aborts and latency, and mid-response
//! connection drops — and assert that every delivered response is
//! byte-identical to the reference, that at least one job was shed and
//! retried to completion, that the store degraded without failing a
//! job, and that `jobs = hits + misses + coalesced + shed` holds.
//! `--self-check --graphs` runs the *named-graphs* flavor: negotiate
//! protocol v2 (`hello`), drive the full graph lifecycle
//! (create / patch / get / spanner / delete) on all four variants
//! across both surfaces, stream 1000 single-op insert patches at a
//! star graph (most of them covered by the maintained working cover)
//! and assert that `commuted > 0`, that incremental maintenance beat
//! the extrapolated cost of recomputing from scratch after every
//! delta, that every maintained spanner is byte-equal to a
//! from-scratch solve of its final edge set, and — after a restart on
//! the same `--cache-dir` — that both surfaces re-serve every spanner
//! byte-identically without an engine re-run. It prints one
//! `{"graphs_self_check":...}` JSON line with the delta-class counts
//! and timings (CI uploads it as an artifact).

#![deny(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dsa_core::dist::{VariantInstance, VariantKind};
use dsa_graphs::{gen, DiGraph, EdgeSet, EdgeWeights, Graph};
use dsa_runtime::json::Json;
use dsa_runtime::obs;
use dsa_runtime::{FaultInjector, FaultPlan};
use dsa_service::{
    Client, DeltaOp, EdgeRole, GraphSpec, HttpClient, HttpServer, JobSpec, RetryPolicy, Server,
    Service, ServiceConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Args {
    addr: String,
    http_port: Option<u16>,
    cfg: ServiceConfig,
    self_check: bool,
    http: bool,
    chaos: bool,
    graphs: bool,
    drain_timeout: Duration,
    trace_dir: Option<PathBuf>,
}

const USAGE: &str = "usage: spanner-serve [--addr HOST:PORT] [--http-port PORT] [--workers N] [--queue N] [--cache N] [--shards N] [--cache-dir DIR] [--log-level LEVEL] [--trace-dir DIR] [--drain-timeout SECS] [--fault-plan PLAN] [--self-check [--http | --chaos | --graphs]]";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Explicit `--help` is a successful invocation, unlike bad usage.
fn help() -> ! {
    println!("{USAGE}");
    std::process::exit(0);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7071".to_string(),
        http_port: None,
        cfg: ServiceConfig {
            workers: 8,
            ..ServiceConfig::default()
        },
        self_check: false,
        http: false,
        chaos: false,
        graphs: false,
        drain_timeout: Duration::from_secs(10),
        trace_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                obs::error("spanner-serve", "missing flag value", &[("flag", &name)]);
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--http-port" => {
                // Parse as u16 directly: `as u16` on a wider parse
                // would silently wrap 65536 to an ephemeral bind.
                args.http_port = Some(value("--http-port").parse().unwrap_or_else(|_| {
                    obs::error(
                        "spanner-serve",
                        "invalid value for --http-port (expected 0..=65535)",
                        &[],
                    );
                    usage()
                }))
            }
            "--workers" => args.cfg.workers = parse_num(&value("--workers"), "--workers"),
            "--queue" => args.cfg.queue_capacity = parse_num(&value("--queue"), "--queue"),
            "--cache" => args.cfg.cache_capacity = parse_num(&value("--cache"), "--cache"),
            "--shards" => args.cfg.engine_shards = Some(parse_num(&value("--shards"), "--shards")),
            "--cache-dir" => args.cfg.cache_dir = Some(value("--cache-dir").into()),
            "--log-level" => {
                let raw = value("--log-level");
                match raw.parse() {
                    Ok(level) => obs::set_log_level(level),
                    Err(_) => {
                        obs::error(
                            "spanner-serve",
                            "invalid value for --log-level (expected error/warn/info/debug/trace)",
                            &[("value", &raw)],
                        );
                        usage()
                    }
                }
            }
            "--trace-dir" => args.trace_dir = Some(value("--trace-dir").into()),
            "--drain-timeout" => {
                args.drain_timeout = Duration::from_secs(parse_num(
                    &value("--drain-timeout"),
                    "--drain-timeout",
                ) as u64)
            }
            "--fault-plan" => {
                let raw = value("--fault-plan");
                match FaultPlan::parse(&raw) {
                    Ok(plan) => args.cfg.fault = Some(Arc::new(FaultInjector::new(plan))),
                    Err(e) => {
                        obs::error(
                            "spanner-serve",
                            "invalid --fault-plan",
                            &[("value", &raw), ("error", &e)],
                        );
                        usage()
                    }
                }
            }
            "--self-check" => args.self_check = true,
            "--http" => args.http = true,
            "--chaos" => args.chaos = true,
            "--graphs" => args.graphs = true,
            "--help" | "-h" => help(),
            other => {
                obs::error("spanner-serve", "unknown flag", &[("flag", &other)]);
                usage()
            }
        }
    }
    if args.http && !args.self_check {
        obs::error(
            "spanner-serve",
            "--http selects the HTTP self-check; it requires --self-check (use --http-port to serve HTTP)",
            &[],
        );
        usage()
    }
    if args.chaos && !args.self_check {
        obs::error(
            "spanner-serve",
            "--chaos selects the chaos self-check; it requires --self-check (use --fault-plan to serve with injection)",
            &[],
        );
        usage()
    }
    if args.graphs && !args.self_check {
        obs::error(
            "spanner-serve",
            "--graphs selects the named-graphs self-check; it requires --self-check",
            &[],
        );
        usage()
    }
    if args.graphs && (args.http || args.chaos) {
        obs::error(
            "spanner-serve",
            "--graphs is its own self-check flavor; combine it only with --cache-dir/--trace-dir",
            &[],
        );
        usage()
    }
    args
}

fn parse_num(value: &str, flag: &str) -> usize {
    value.parse().unwrap_or_else(|_| {
        obs::error(
            "spanner-serve",
            "invalid flag value",
            &[("flag", &flag), ("value", &value)],
        );
        usage()
    })
}

/// The HTTP listener binds the same host as `--addr`.
fn http_addr_of(tcp_addr: &str, port: u16) -> String {
    let host = tcp_addr.rsplit_once(':').map_or("127.0.0.1", |(h, _)| h);
    format!("{host}:{port}")
}

/// Set by the SIGTERM/SIGINT handler; the serve loop polls it and
/// starts the graceful drain when it flips.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_shutdown_signal(_signum: i32) {
    // Only async-signal-safe work here: one atomic store.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the graceful-shutdown handler for SIGTERM and SIGINT.
/// Declared by hand (the build is offline, no libc crate): `signal`
/// is in every libc this binary links against.
#[cfg(unix)]
#[allow(unsafe_code)] // hand-declared libc `signal` FFI; the only unsafe in the workspace
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_shutdown_signal);
        signal(SIGINT, on_shutdown_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() -> ExitCode {
    let args = parse_args();
    if args.self_check {
        return self_check(
            &args.cfg,
            args.http,
            args.chaos,
            args.graphs,
            args.trace_dir.as_deref(),
        );
    }
    // Handlers go in before `listening` is announced: a supervisor
    // may SIGTERM the instant it sees the line, and that must already
    // be a drain, not a default-action kill.
    install_signal_handlers();
    // Open the service first (so a bad --cache-dir reports as a store
    // problem, not a bind problem), then attach the frontends to it.
    let service = match Service::open(&args.cfg) {
        Ok(service) => Arc::new(service),
        Err(e) => {
            obs::error(
                "spanner-serve",
                "cannot open result store",
                &[("error", &e)],
            );
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::with_service(args.addr.as_str(), service) {
        Ok(server) => server,
        Err(e) => {
            obs::error(
                "spanner-serve",
                "cannot bind",
                &[("addr", &args.addr), ("error", &e)],
            );
            return ExitCode::FAILURE;
        }
    };
    println!("listening {}", server.addr());
    // With --http-port, both frontends serve the same `Service`
    // concurrently, and both are shut down by the drain path.
    let http_frontend = match args.http_port {
        None => None,
        Some(port) => {
            let addr = http_addr_of(&args.addr, port);
            match HttpServer::with_service(addr.as_str(), server.service().clone()) {
                Ok(http) => {
                    println!("http listening {}", http.addr());
                    Some(http)
                }
                Err(e) => {
                    obs::error(
                        "spanner-serve",
                        "cannot bind http",
                        &[("addr", &addr), ("error", &e)],
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    // With --trace-dir, a background thread drains the flight recorder
    // to JSONL every 2 s; events between flushes stay in the bounded
    // ring (oldest evicted first under pressure). The drain path does
    // one final flush to the same file.
    let mut trace_path: Option<PathBuf> = None;
    if let Some(dir) = &args.trace_dir {
        match trace_file_in(dir) {
            Err(e) => {
                obs::error("spanner-serve", "cannot open trace dir", &[("error", &e)]);
                return ExitCode::FAILURE;
            }
            Ok(path) => {
                println!("tracing to {}", path.display());
                trace_path = Some(path.clone());
                let service = server.service().clone();
                let spawned = std::thread::Builder::new()
                    .name("spanner-trace-flush".into())
                    .spawn(move || loop {
                        std::thread::sleep(std::time::Duration::from_secs(2));
                        if let Err(e) = append_trace(&service, &path) {
                            obs::warn("spanner-serve", "trace flush failed", &[("error", &e)]);
                        }
                    });
                if let Err(e) = spawned {
                    obs::error(
                        "spanner-serve",
                        "cannot start trace flusher",
                        &[("error", &e)],
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    // Serve until SIGTERM/SIGINT, then drain: stop accepting (the
    // listener shutdown joins connection threads, so every response
    // already on a socket finishes), wait for queued and in-flight
    // runs, flush the trace, exit 0. The store needs no explicit
    // flush — every append is flushed before its job completes.
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    let service = server.service().clone();
    obs::info(
        "spanner-serve",
        "shutdown requested; draining",
        &[("drain_timeout_s", &args.drain_timeout.as_secs())],
    );
    if let Some(http) = http_frontend {
        http.shutdown();
    }
    server.shutdown();
    let drained = service.drain(args.drain_timeout);
    if let Some(path) = &trace_path {
        if let Err(e) = append_trace(&service, path) {
            obs::warn(
                "spanner-serve",
                "final trace flush failed",
                &[("error", &e)],
            );
        }
    }
    if !drained {
        obs::error(
            "spanner-serve",
            "drain timed out with work still in flight",
            &[("drain_timeout_s", &args.drain_timeout.as_secs())],
        );
        return ExitCode::FAILURE;
    }
    println!("drained");
    ExitCode::SUCCESS
}

/// The per-process trace file inside `dir` (created if missing).
fn trace_file_in(dir: &Path) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    Ok(dir.join(format!("trace-{}.jsonl", std::process::id())))
}

/// Drains the service's flight recorder and appends it to `path`.
fn append_trace(service: &Service, path: &Path) -> Result<(), String> {
    use std::io::Write;
    let lines = service.flight_recorder().drain_jsonl();
    if lines.is_empty() {
        return Ok(());
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("open {}: {e}", path.display()))?;
    file.write_all(lines.as_bytes())
        .map_err(|e| format!("write {}: {e}", path.display()))
}

fn self_check(
    cfg: &ServiceConfig,
    http: bool,
    chaos: bool,
    graphs: bool,
    trace_dir: Option<&Path>,
) -> ExitCode {
    let result = if graphs {
        self_check_graphs(cfg, trace_dir)
    } else if chaos {
        self_check_chaos(cfg, trace_dir)
    } else if cfg.cache_dir.is_some() {
        self_check_persistent(cfg, trace_dir)
    } else if http {
        self_check_http(cfg, trace_dir)
    } else {
        self_check_tcp(cfg, trace_dir)
    };
    match result {
        Ok(()) => {
            println!("self-check ok");
            ExitCode::SUCCESS
        }
        Err(e) => {
            obs::error("spanner-serve", "self-check FAILED", &[("error", &e)]);
            ExitCode::FAILURE
        }
    }
}

/// One-shot flight-recorder export for the self-check flavors.
fn export_trace(service: &Service, trace_dir: Option<&Path>) -> Result<(), String> {
    let Some(dir) = trace_dir else {
        return Ok(());
    };
    let path = trace_file_in(dir)?;
    append_trace(service, &path)
}

/// Checks the counter invariant inside a Prometheus text exposition:
/// `spanner_jobs_total` must equal the sum of the
/// `spanner_jobs_by_class_total` series, and the body must carry the
/// format's structural markers.
fn check_prometheus(text: &str) -> Result<(), String> {
    if !text.starts_with("# HELP ") {
        return Err(format!(
            "prometheus exposition does not start with # HELP: {:?}",
            text.lines().next().unwrap_or("")
        ));
    }
    let sample_value = |line: &str| -> Result<u64, String> {
        line.rsplit(' ')
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("unparseable sample line: {line}"))
    };
    let mut jobs: Option<u64> = None;
    let mut class_sum: u64 = 0;
    let mut class_series = 0;
    for line in text.lines() {
        if line.starts_with("spanner_jobs_total ") {
            jobs = Some(sample_value(line)?);
        } else if line.starts_with("spanner_jobs_by_class_total{") {
            class_sum += sample_value(line)?;
            class_series += 1;
        }
    }
    let jobs = jobs.ok_or("exposition is missing spanner_jobs_total")?;
    if class_series != 4 {
        return Err(format!(
            "expected 4 spanner_jobs_by_class_total series (hit/miss/coalesced/shed), found {class_series}"
        ));
    }
    if jobs != class_sum {
        return Err(format!(
            "prometheus invariant violated: spanner_jobs_total {jobs} != class sum {class_sum}"
        ));
    }
    Ok(())
}

/// One instance per variant, from seeded generators (shared by both
/// self-check flavors so TCP and HTTP exercise identical jobs).
fn self_check_specs() -> Vec<JobSpec> {
    let mut rng = StdRng::seed_from_u64(2018);
    let g = gen::gnp_connected(24, 0.3, &mut rng);
    let d = gen::random_digraph_connected(18, 0.12, &mut rng);
    let w = gen::random_weights(g.num_edges(), 0, 9, &mut rng);
    let (clients, servers) = gen::client_server_split(&g, 0.6, 0.6, &mut rng);
    vec![
        JobSpec::new(VariantInstance::Undirected { graph: g.clone() }, 1),
        JobSpec::new(VariantInstance::Directed { graph: d }, 2),
        JobSpec::new(
            VariantInstance::Weighted {
                graph: g.clone(),
                weights: w,
            },
            3,
        ),
        JobSpec::new(
            VariantInstance::ClientServer {
                graph: g,
                clients,
                servers,
            },
            4,
        ),
    ]
}

fn self_check_tcp(cfg: &ServiceConfig, trace_dir: Option<&Path>) -> Result<(), String> {
    let server =
        Server::start("127.0.0.1:0", cfg).map_err(|e| format!("bind ephemeral port: {e}"))?;
    let addr = server.addr();
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client.ping().map_err(|e| format!("ping: {e}"))?;

    let specs = self_check_specs();
    // The *first* submission of specs[0] is the cold computation;
    // capture its raw bytes so the later cache hit is compared against
    // a genuinely uncached response.
    let cold = client
        .run_raw(&specs[0])
        .map_err(|e| format!("cold run: {e}"))?;
    for spec in &specs {
        let resp = client
            .run(spec)
            .map_err(|e| format!("{} run: {e}", spec.instance.kind()))?;
        if !resp.converged {
            return Err(format!("{} run did not converge", spec.instance.kind()));
        }
    }
    let warm = client
        .run_raw(&specs[0])
        .map_err(|e| format!("warm run: {e}"))?;
    if cold != warm {
        return Err("cache hit was not byte-identical to cold response".into());
    }
    let stats = client.stats_json().map_err(|e| format!("stats: {e}"))?;
    let m = server.service().metrics();
    if m.cache_misses != specs.len() as u64 {
        return Err(format!(
            "expected {} engine runs, metrics: {stats}",
            specs.len()
        ));
    }
    if m.cache_hits < 2 {
        return Err(format!("expected >= 2 cache hits, metrics: {stats}"));
    }
    if m.jobs_submitted != m.cache_hits + m.cache_misses + m.coalesced {
        return Err(format!("counters do not add up: {stats}"));
    }
    // An invalid request must produce a wire error, not a dead server.
    let mut invalid = JobSpec::new(
        VariantInstance::ClientServer {
            graph: Graph::from_edges(3, [(0, 1), (1, 2)]),
            clients: EdgeSet::full(2),
            servers: EdgeSet::full(2),
        },
        0,
    );
    invalid.config.accept_denominator = 0;
    match client.run(&invalid) {
        Err(dsa_service::JobError::Remote(_)) => {}
        other => return Err(format!("invalid job: expected remote error, got {other:?}")),
    }
    client
        .ping()
        .map_err(|e| format!("ping after error: {e}"))?;
    export_trace(server.service(), trace_dir)?;
    server.shutdown();
    Ok(())
}

fn self_check_http(cfg: &ServiceConfig, trace_dir: Option<&Path>) -> Result<(), String> {
    // Both frontends over ONE service, exactly as `--http-port` runs
    // them, so the shared-cache claim is checked against the real
    // wiring.
    let server =
        Server::start("127.0.0.1:0", cfg).map_err(|e| format!("bind ephemeral port: {e}"))?;
    let http = HttpServer::with_service("127.0.0.1:0", server.service().clone())
        .map_err(|e| format!("bind ephemeral http port: {e}"))?;
    let addr = http.addr();
    let mut client = HttpClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client.healthz().map_err(|e| format!("healthz: {e}"))?;

    let specs = self_check_specs();
    let (cold_status, cold) = client
        .run_raw(&specs[0])
        .map_err(|e| format!("cold run: {e}"))?;
    if cold_status != 200 {
        return Err(format!("cold run: HTTP {cold_status}"));
    }
    for spec in &specs {
        let resp = client
            .run(spec)
            .map_err(|e| format!("{} run: {e}", spec.instance.kind()))?;
        if !resp.converged {
            return Err(format!("{} run did not converge", spec.instance.kind()));
        }
    }
    let (warm_status, warm) = client
        .run_raw(&specs[0])
        .map_err(|e| format!("warm run: {e}"))?;
    if warm_status != 200 {
        return Err(format!("warm run: HTTP {warm_status}"));
    }
    if cold != warm {
        return Err("cache hit was not byte-identical to cold response body".into());
    }

    // A job submitted over TCP and the identical job submitted over
    // HTTP hit the same cache entry: the TCP run of a fresh spec is
    // the miss, the HTTP repeat is a pure hit (no new engine run).
    let misses_before = server.service().metrics().cache_misses;
    let mut rng = StdRng::seed_from_u64(4242);
    let shared_spec = JobSpec::new(
        VariantInstance::Undirected {
            graph: gen::gnp_connected(20, 0.3, &mut rng),
        },
        7,
    );
    let mut tcp = Client::connect(server.addr()).map_err(|e| format!("tcp connect: {e}"))?;
    let via_tcp = tcp.run(&shared_spec).map_err(|e| format!("tcp run: {e}"))?;
    let via_http = client
        .run(&shared_spec)
        .map_err(|e| format!("http run of tcp-cached spec: {e}"))?;
    if via_tcp != via_http {
        return Err("TCP and HTTP answered the same spec differently".into());
    }
    let m = server.service().metrics();
    if m.cache_misses != misses_before + 1 {
        return Err(format!(
            "TCP+HTTP submissions of one spec did not share a cache entry: {} misses for one spec",
            m.cache_misses - misses_before
        ));
    }

    // The /v1/metrics invariant, read back through the facade itself.
    let metrics_json = client.metrics_json().map_err(|e| format!("metrics: {e}"))?;
    let parsed =
        Json::parse(&metrics_json).map_err(|e| format!("metrics is not valid JSON: {e}"))?;
    let field = |k: &str| -> Result<u64, String> {
        parsed
            .get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("metrics missing `{k}`: {metrics_json}"))
    };
    let (jobs, hits, misses, coalesced) = (
        field("jobs_submitted")?,
        field("cache_hits")?,
        field("cache_misses")?,
        field("coalesced")?,
    );
    if jobs != hits + misses + coalesced {
        return Err(format!(
            "metrics invariant violated: {jobs} != {hits} + {misses} + {coalesced}"
        ));
    }
    if hits < 2 {
        return Err(format!("expected >= 2 cache hits, metrics: {metrics_json}"));
    }

    // The same snapshot as Prometheus text exposition: structurally
    // well-formed, and its class series sum back to the jobs total.
    let prom = client
        .metrics_prometheus()
        .map_err(|e| format!("prometheus metrics: {e}"))?;
    check_prometheus(&prom)?;
    let (status, _) = client
        .request("GET", "/v1/metrics?format=csv", None)
        .map_err(|e| format!("bad-format request: {e}"))?;
    if status != 400 {
        return Err(format!(
            "unknown metrics format: expected 400, got {status}"
        ));
    }

    // Errors must map to statuses without wedging the connection.
    let (status, _) = client
        .request("POST", "/v1/jobs", Some("{not json"))
        .map_err(|e| format!("bad-JSON request: {e}"))?;
    if status != 400 {
        return Err(format!("bad JSON: expected 400, got {status}"));
    }
    let (status, _) = client
        .request("GET", "/nope", None)
        .map_err(|e| format!("unknown-route request: {e}"))?;
    if status != 404 {
        return Err(format!("unknown route: expected 404, got {status}"));
    }
    let (status, _) = client
        .request("GET", "/v1/jobs", None)
        .map_err(|e| format!("wrong-method request: {e}"))?;
    if status != 405 {
        return Err(format!("wrong method: expected 405, got {status}"));
    }
    client
        .healthz()
        .map_err(|e| format!("healthz after errors: {e}"))?;
    export_trace(server.service(), trace_dir)?;
    http.shutdown();
    server.shutdown();
    Ok(())
}

/// The warm-restart flavor (`--self-check --cache-dir DIR`): serve all
/// four variants into a persistent store over BOTH surfaces, stop the
/// service, reopen the same directory, and prove that every
/// re-submission is answered byte-identically *without* an engine
/// re-run — with `disk_hits > 0` (the reopened LRU is kept smaller
/// than the record count so the disk path must carry part of the
/// load) and the metrics invariant intact at every observation point.
fn self_check_persistent(cfg: &ServiceConfig, trace_dir: Option<&Path>) -> Result<(), String> {
    let dir = cfg
        .cache_dir
        .as_deref()
        .expect("persistent self-check needs --cache-dir");
    let specs = self_check_specs();
    let check_invariant = |service: &Service, when: &str| -> Result<(), String> {
        let m = service.metrics();
        if m.jobs_submitted != m.cache_hits + m.cache_misses + m.coalesced {
            return Err(format!(
                "metrics invariant violated {when}: {} != {} + {} + {}",
                m.jobs_submitted, m.cache_hits, m.cache_misses, m.coalesced
            ));
        }
        if m.disk_hits > m.cache_hits {
            return Err(format!(
                "disk_hits {} exceeds cache_hits {} {when}",
                m.disk_hits, m.cache_hits
            ));
        }
        Ok(())
    };

    // Phase 1: a cold store fills from engine runs.
    let mut tcp_cold: Vec<Vec<u8>> = Vec::new();
    let mut http_cold: Vec<Vec<u8>> = Vec::new();
    {
        let service =
            Arc::new(Service::open(cfg).map_err(|e| format!("open store {}: {e}", dir.display()))?);
        let server = Server::with_service("127.0.0.1:0", Arc::clone(&service))
            .map_err(|e| format!("bind ephemeral port: {e}"))?;
        let http = HttpServer::with_service("127.0.0.1:0", Arc::clone(&service))
            .map_err(|e| format!("bind ephemeral http port: {e}"))?;
        let mut tcp = Client::connect(server.addr()).map_err(|e| format!("tcp connect: {e}"))?;
        let mut hc = HttpClient::connect(http.addr()).map_err(|e| format!("http connect: {e}"))?;
        for spec in &specs {
            let kind = spec.instance.kind();
            tcp_cold.push(
                tcp.run_raw(spec)
                    .map_err(|e| format!("cold {kind} tcp: {e}"))?,
            );
            let (status, body) = hc
                .run_raw(spec)
                .map_err(|e| format!("cold {kind} http: {e}"))?;
            if status != 200 {
                return Err(format!("cold {kind} http: HTTP {status}"));
            }
            http_cold.push(body);
        }
        let m = service.metrics();
        if m.store_records != specs.len() as u64 {
            return Err(format!(
                "expected {} store records after cold phase, got {}",
                specs.len(),
                m.store_records
            ));
        }
        if m.disk_hits != 0 {
            return Err(format!("cold phase reported {} disk hits", m.disk_hits));
        }
        check_invariant(&service, "after cold phase")?;
        http.shutdown();
        server.shutdown();
    } // service drops here: the "restart"

    // Phase 2: reopen the same directory. The LRU is deliberately too
    // small to warm-hold every record, so some answers must travel the
    // verified disk path.
    let warm_cfg = ServiceConfig {
        cache_capacity: specs.len() / 2,
        ..cfg.clone()
    };
    let service = Arc::new(
        Service::open(&warm_cfg).map_err(|e| format!("reopen store {}: {e}", dir.display()))?,
    );
    let server = Server::with_service("127.0.0.1:0", Arc::clone(&service))
        .map_err(|e| format!("bind ephemeral port: {e}"))?;
    let http = HttpServer::with_service("127.0.0.1:0", Arc::clone(&service))
        .map_err(|e| format!("bind ephemeral http port: {e}"))?;
    let mut tcp = Client::connect(server.addr()).map_err(|e| format!("tcp connect: {e}"))?;
    let mut hc = HttpClient::connect(http.addr()).map_err(|e| format!("http connect: {e}"))?;
    for (i, spec) in specs.iter().enumerate() {
        let kind = spec.instance.kind();
        let warm = tcp
            .run_raw(spec)
            .map_err(|e| format!("warm {kind} tcp: {e}"))?;
        if warm != tcp_cold[i] {
            return Err(format!(
                "{kind}: TCP response after restart is not byte-identical"
            ));
        }
        let (status, body) = hc
            .run_raw(spec)
            .map_err(|e| format!("warm {kind} http: {e}"))?;
        if status != 200 {
            return Err(format!("warm {kind} http: HTTP {status}"));
        }
        if body != http_cold[i] {
            return Err(format!(
                "{kind}: HTTP body after restart is not byte-identical"
            ));
        }
    }
    let m = service.metrics();
    if m.cache_misses != 0 {
        return Err(format!(
            "restart re-ran the engine: {} cache misses",
            m.cache_misses
        ));
    }
    if m.disk_hits == 0 {
        return Err("expected disk_hits > 0 after warm restart".into());
    }
    if m.store_records != specs.len() as u64 {
        return Err(format!(
            "expected {} store records after restart, got {}",
            specs.len(),
            m.store_records
        ));
    }
    check_invariant(&service, "after warm phase")?;

    // The same invariant, read back through the HTTP facade.
    let metrics_json = hc.metrics_json().map_err(|e| format!("metrics: {e}"))?;
    let parsed =
        Json::parse(&metrics_json).map_err(|e| format!("metrics is not valid JSON: {e}"))?;
    let field = |k: &str| -> Result<u64, String> {
        parsed
            .get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("metrics missing `{k}`: {metrics_json}"))
    };
    if field("jobs_submitted")?
        != field("cache_hits")? + field("cache_misses")? + field("coalesced")?
    {
        return Err(format!("served metrics invariant violated: {metrics_json}"));
    }
    if field("disk_hits")? == 0 {
        return Err(format!(
            "served metrics report no disk hits: {metrics_json}"
        ));
    }
    // The Prometheus exposition stays coherent across the restart too.
    let prom = hc
        .metrics_prometheus()
        .map_err(|e| format!("prometheus metrics: {e}"))?;
    check_prometheus(&prom)?;
    export_trace(&service, trace_dir)?;
    http.shutdown();
    server.shutdown();
    Ok(())
}

/// The default chaos plan (`--self-check --chaos` without
/// `--fault-plan`): every fault point armed, seeded so the decision
/// stream is reproducible run to run.
const DEFAULT_CHAOS_PLAN: &str = "seed=7;store.append.err=0.5;store.append.short=0.3;store.read.err=0.2;engine.latency_ms=3@0.4;engine.abort=0.25;conn.drop=0.2";

/// The chaos flavor (`--self-check --chaos`): fault-free reference
/// responses first, then a deliberately tiny service (one worker,
/// depth-1 queue, persistent store in a scratch dir) hammered through
/// retrying TCP and HTTP clients while the seeded plan injects store
/// failures, engine aborts/latency, and mid-response connection drops.
/// Asserts: every delivered response is byte-identical to the
/// reference, at least one job was shed, at least one fault fired, the
/// store degraded to memory-only without failing a job, and
/// `jobs = hits + misses + coalesced + shed` — scraped back out of the
/// Prometheus exposition, not just the in-process counters.
fn self_check_chaos(cfg: &ServiceConfig, trace_dir: Option<&Path>) -> Result<(), String> {
    // Twelve distinct jobs: the four variants under three seeds each.
    let specs: Vec<JobSpec> = (0..3u64)
        .flat_map(|salt| {
            self_check_specs().into_iter().map(move |mut spec| {
                spec.config.seed += 10 * salt;
                spec
            })
        })
        .collect();

    // Reference: a fault-free in-process service (no store, no
    // frontends) maps each spec to its canonical response.
    let reference_service = Service::new(&ServiceConfig {
        fault: None,
        cache_dir: None,
        ..cfg.clone()
    });
    let mut reference = Vec::with_capacity(specs.len());
    for spec in &specs {
        reference.push(
            reference_service
                .run(spec)
                .map_err(|e| format!("reference {} run: {e}", spec.instance.kind()))?,
        );
    }

    // The chaos service: user-supplied plan if one came via
    // --fault-plan, the default plan otherwise.
    let default_plan = cfg.fault.is_none();
    let fault = match &cfg.fault {
        Some(f) => Arc::clone(f),
        None => Arc::new(FaultInjector::new(
            FaultPlan::parse(DEFAULT_CHAOS_PLAN).map_err(|e| format!("default plan: {e}"))?,
        )),
    };
    let store_dir = std::env::temp_dir().join(format!("spanner-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let chaos_cfg = ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        cache_dir: Some(store_dir.clone()),
        fault: Some(Arc::clone(&fault)),
        ..cfg.clone()
    };
    let service =
        Arc::new(Service::open(&chaos_cfg).map_err(|e| format!("open chaos store: {e}"))?);
    let server = Server::with_service("127.0.0.1:0", Arc::clone(&service))
        .map_err(|e| format!("bind ephemeral port: {e}"))?;
    let http = HttpServer::with_service("127.0.0.1:0", Arc::clone(&service))
        .map_err(|e| format!("bind ephemeral http port: {e}"))?;

    // Phase 1 — byte identity under chaos: four TCP clients and one
    // HTTP client, each retrying with its own jitter seed, each
    // submitting all twelve jobs in a rotated order. Everything that
    // is *delivered* must equal the reference, whatever was injected.
    let policy = |seed: u64| RetryPolicy {
        max_retries: 60,
        base: Duration::from_millis(2),
        cap: Duration::from_millis(50),
        seed,
    };
    let tcp_addr = server.addr();
    let http_addr = http.addr();
    let worker_errors: Vec<String> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..4usize {
            let (specs, reference) = (&specs, &reference);
            handles.push(scope.spawn(move || -> Result<(), String> {
                let mut client =
                    Client::connect(tcp_addr).map_err(|e| format!("tcp connect: {e}"))?;
                let policy = policy(t as u64);
                for i in 0..specs.len() {
                    let i = (i + 3 * t) % specs.len();
                    let resp = client
                        .run_with_retry(&specs[i], &policy)
                        .map_err(|e| format!("tcp client {t}, spec {i}: {e}"))?;
                    if resp != reference[i] {
                        return Err(format!("tcp client {t}: spec {i} diverged from reference"));
                    }
                }
                Ok(())
            }));
        }
        {
            let (specs, reference) = (&specs, &reference);
            handles.push(scope.spawn(move || -> Result<(), String> {
                let mut client =
                    HttpClient::connect(http_addr).map_err(|e| format!("http connect: {e}"))?;
                let policy = policy(99);
                for (i, spec) in specs.iter().enumerate() {
                    let resp = client
                        .run_with_retry(spec, &policy)
                        .map_err(|e| format!("http client, spec {i}: {e}"))?;
                    if resp != reference[i] {
                        return Err(format!("http client: spec {i} diverged from reference"));
                    }
                }
                Ok(())
            }));
        }
        handles
            .into_iter()
            .filter_map(|h| {
                h.join()
                    .unwrap_or(Err("client thread panicked".into()))
                    .err()
            })
            .collect()
    });
    if let Some(e) = worker_errors.first() {
        return Err(e.clone());
    }

    // Phase 2 — force admission control if phase 1 never tripped it:
    // rounds of three concurrent never-cached jobs against the
    // one-worker, depth-1 queue until a shed is counted.
    let mut hammer_seed = 1000u64;
    let mut rounds = 0;
    while service.metrics().shed == 0 && rounds < 50 {
        rounds += 1;
        let fresh: Vec<JobSpec> = (0..3)
            .map(|i| {
                let mut spec = specs[0].clone();
                spec.config.seed = hammer_seed + i;
                spec
            })
            .collect();
        hammer_seed += 3;
        std::thread::scope(|scope| {
            for spec in &fresh {
                scope.spawn(move || {
                    if let Ok(mut c) = Client::connect(tcp_addr) {
                        // Sheds and injected failures are the point
                        // here; only delivery integrity matters, and
                        // phase 1 already asserted that.
                        let _ = c.run(spec);
                    }
                });
            }
        });
    }
    let m = service.metrics();
    if m.shed == 0 {
        return Err(format!(
            "admission control never shed a job in {rounds} hammer rounds"
        ));
    }
    if m.jobs_submitted != m.cache_hits + m.cache_misses + m.coalesced + m.shed {
        return Err(format!(
            "metrics invariant violated: {} != {} + {} + {} + {}",
            m.jobs_submitted, m.cache_hits, m.cache_misses, m.coalesced, m.shed
        ));
    }
    if fault.fired() == 0 {
        return Err("the fault plan never fired".into());
    }
    if default_plan && m.store_degraded != 1 {
        return Err(format!(
            "expected the store to degrade under injected append failures, store_degraded = {}",
            m.store_degraded
        ));
    }

    // The same facts, scraped from the Prometheus exposition the way
    // CI scrapes them.
    let mut hc = HttpClient::connect(http_addr).map_err(|e| format!("http connect: {e}"))?;
    let prom = hc
        .metrics_prometheus()
        .map_err(|e| format!("prometheus metrics: {e}"))?;
    check_prometheus(&prom)?;
    let shed_line = format!("spanner_jobs_by_class_total{{class=\"shed\"}} {}", m.shed);
    if !prom.lines().any(|l| l == shed_line) {
        return Err(format!("exposition is missing `{shed_line}`"));
    }
    if default_plan && !prom.lines().any(|l| l == "spanner_store_degraded 1") {
        return Err("exposition is missing `spanner_store_degraded 1`".into());
    }

    println!(
        "chaos: shed={} degraded={} faults_fired={} timed_out={}",
        m.shed,
        m.store_degraded,
        fault.fired(),
        m.connections_timed_out,
    );
    export_trace(&service, trace_dir)?;
    http.shutdown();
    server.shutdown();
    drop(service);
    let _ = std::fs::remove_dir_all(&store_dir);
    Ok(())
}

/// A client-side mirror of a named graph's live edge list: endpoint
/// pairs plus the variant extras (weights, client/server roles), kept
/// in the registry's live-id order so a maintained spanner's edge ids
/// can be compared against a from-scratch solve of the same set.
/// Pairs are normalized exactly the way the graph constructors store
/// them: `(min, max)` for the undirected family, submitted order for
/// directed.
struct LiveEdges {
    kind: VariantKind,
    n: usize,
    /// `(u, v, weight, client, server)` per live edge.
    recs: Vec<(usize, usize, u64, bool, bool)>,
}

impl LiveEdges {
    fn of(instance: &VariantInstance) -> LiveEdges {
        let kind = instance.kind();
        let (n, recs) = match instance {
            VariantInstance::Undirected { graph } => (
                graph.num_vertices(),
                graph
                    .edges()
                    .map(|(_, u, v)| (u, v, 0, false, false))
                    .collect(),
            ),
            VariantInstance::Directed { graph } => (
                graph.num_vertices(),
                graph
                    .edges()
                    .map(|(_, u, v)| (u, v, 0, false, false))
                    .collect(),
            ),
            VariantInstance::Weighted { graph, weights } => (
                graph.num_vertices(),
                graph
                    .edges()
                    .map(|(e, u, v)| (u, v, weights.get(e), false, false))
                    .collect(),
            ),
            VariantInstance::ClientServer {
                graph,
                clients,
                servers,
            } => (
                graph.num_vertices(),
                graph
                    .edges()
                    .map(|(e, u, v)| (u, v, 0, clients.contains(e), servers.contains(e)))
                    .collect(),
            ),
        };
        LiveEdges { kind, n, recs }
    }

    fn pair(&self, u: usize, v: usize) -> (usize, usize) {
        if self.kind == VariantKind::Directed {
            (u, v)
        } else {
            (u.min(v), u.max(v))
        }
    }

    fn contains(&self, u: usize, v: usize) -> bool {
        let p = self.pair(u, v);
        self.recs.iter().any(|r| (r.0, r.1) == p)
    }

    fn insert(&mut self, u: usize, v: usize, weight: u64, role: Option<EdgeRole>) {
        let (u, v) = self.pair(u, v);
        let (client, server) = match role {
            Some(EdgeRole::Client) => (true, false),
            Some(EdgeRole::Server) => (false, true),
            Some(EdgeRole::Both) => (true, true),
            None => (false, false),
        };
        self.recs.push((u, v, weight, client, server));
    }

    fn delete(&mut self, u: usize, v: usize) {
        let p = self.pair(u, v);
        let i = self
            .recs
            .iter()
            .position(|r| (r.0, r.1) == p)
            .expect("deleting a live edge");
        // The registry compacts by removing the record and shifting the
        // tail down one id; `Vec::remove` is exactly that.
        self.recs.remove(i);
    }

    fn instance(&self) -> VariantInstance {
        let pairs: Vec<(usize, usize)> = self.recs.iter().map(|r| (r.0, r.1)).collect();
        match self.kind {
            VariantKind::Undirected => VariantInstance::Undirected {
                graph: Graph::from_edges(self.n, pairs),
            },
            VariantKind::Directed => VariantInstance::Directed {
                graph: DiGraph::from_edges(self.n, pairs),
            },
            VariantKind::Weighted => VariantInstance::Weighted {
                graph: Graph::from_edges(self.n, pairs),
                weights: EdgeWeights::from_vec(self.recs.iter().map(|r| r.2).collect()),
            },
            VariantKind::ClientServer => {
                let m = self.recs.len();
                VariantInstance::ClientServer {
                    graph: Graph::from_edges(self.n, pairs),
                    clients: EdgeSet::from_iter(
                        m,
                        self.recs
                            .iter()
                            .enumerate()
                            .filter(|(_, r)| r.3)
                            .map(|(i, _)| i),
                    ),
                    servers: EdgeSet::from_iter(
                        m,
                        self.recs
                            .iter()
                            .enumerate()
                            .filter(|(_, r)| r.4)
                            .map(|(i, _)| i),
                    ),
                }
            }
        }
    }
}

/// Asserts a maintained spanner equals a from-scratch solve of the
/// mirror's current edge set: same canonical job key, same endpoint
/// pairs (spanner edge ids mapped through the mirror's live order).
fn check_from_scratch(
    tcp: &mut Client,
    id: &str,
    live: &LiveEdges,
    config: &dsa_core::dist::EngineConfig,
) -> Result<(), String> {
    let gs = tcp
        .graph_spanner(id)
        .map_err(|e| format!("{id} spanner: {e}"))?;
    let spec = JobSpec {
        instance: live.instance(),
        config: config.clone(),
        timeout: None,
    };
    let resp = tcp
        .run(&spec)
        .map_err(|e| format!("{id} from-scratch run: {e}"))?;
    if resp.key != gs.key {
        return Err(format!(
            "{id}: maintained spanner key {:016x} != from-scratch key {:016x}",
            gs.key, resp.key
        ));
    }
    let want: Vec<(usize, usize)> = resp
        .spanner
        .iter()
        .map(|&e| (live.recs[e].0, live.recs[e].1))
        .collect();
    if gs.edges != want {
        return Err(format!(
            "{id}: maintained spanner ({} edges) diverges from the from-scratch solve ({} edges)",
            gs.edges.len(),
            want.len()
        ));
    }
    Ok(())
}

fn self_check_graphs(cfg: &ServiceConfig, trace_dir: Option<&Path>) -> Result<(), String> {
    // Graphs only persist with a store directory; fall back to a
    // scratch dir (removed on success) so the flavor runs without
    // --cache-dir too.
    let (dir, ephemeral) = match &cfg.cache_dir {
        Some(d) => (d.clone(), false),
        None => (
            std::env::temp_dir().join(format!("spanner-graphs-{}", std::process::id())),
            true,
        ),
    };
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }
    let graphs_cfg = ServiceConfig {
        cache_dir: Some(dir.clone()),
        ..cfg.clone()
    };

    let service = Arc::new(
        Service::open(&graphs_cfg).map_err(|e| format!("open store {}: {e}", dir.display()))?,
    );
    let server = Server::with_service("127.0.0.1:0", Arc::clone(&service))
        .map_err(|e| format!("bind ephemeral port: {e}"))?;
    let http = HttpServer::with_service("127.0.0.1:0", Arc::clone(&service))
        .map_err(|e| format!("bind ephemeral http port: {e}"))?;
    let mut tcp = Client::connect(server.addr()).map_err(|e| format!("tcp connect: {e}"))?;
    let mut hc = HttpClient::connect(http.addr()).map_err(|e| format!("http connect: {e}"))?;

    // Protocol negotiation: a v2 server must advertise the graphs
    // feature to a v2 client.
    let (proto, features) = tcp.hello().map_err(|e| format!("hello: {e}"))?;
    if proto != 2 || !features.iter().any(|f| f == "graphs") {
        return Err(format!(
            "hello negotiated proto {proto} features {features:?}, expected proto 2 with `graphs`"
        ));
    }

    // Phase 1 — lifecycle on all four variants, mixing surfaces:
    // create over TCP, duplicate-create and patch over HTTP, reads
    // over TCP.
    let mut mirrors: Vec<(String, LiveEdges, dsa_core::dist::EngineConfig)> = Vec::new();
    for spec in self_check_specs() {
        let kind = spec.instance.kind();
        let id = format!("sc-{kind}");
        let gspec = GraphSpec {
            id: id.clone(),
            instance: spec.instance.clone(),
            config: spec.config.clone(),
        };
        let created = tcp
            .graph_create(&gspec)
            .map_err(|e| format!("{kind} create: {e}"))?;
        if created.existed || created.version != 0 || created.spanner_size == 0 {
            return Err(format!(
                "{kind} create: existed={} version={} spanner={}",
                created.existed, created.version, created.spanner_size
            ));
        }
        let again = hc
            .graph_create(&gspec)
            .map_err(|e| format!("{kind} re-create: {e}"))?;
        if !again.existed {
            return Err(format!("{kind}: HTTP re-create was not idempotent"));
        }

        let mut live = LiveEdges::of(&spec.instance);
        // One absent pair to insert, the last live edge to delete.
        let mut fresh = None;
        'scan: for u in 0..live.n {
            for v in (u + 1)..live.n {
                if !live.contains(u, v) {
                    fresh = Some((u, v));
                    break 'scan;
                }
            }
        }
        let (fu, fv) = fresh.ok_or_else(|| format!("{kind}: no absent pair to insert"))?;
        let (du, dv) = {
            let r = *live.recs.last().expect("initial edges");
            (r.0, r.1)
        };
        let (weight, role) = match kind {
            VariantKind::Weighted => (Some(5), None),
            VariantKind::ClientServer => (None, Some(EdgeRole::Both)),
            _ => (None, None),
        };
        let ops = vec![
            DeltaOp::Insert {
                u: fu,
                v: fv,
                weight,
                role,
            },
            DeltaOp::Delete { u: du, v: dv },
        ];
        let patched = hc
            .graph_patch(&id, &ops)
            .map_err(|e| format!("{kind} patch: {e}"))?;
        live.insert(fu, fv, weight.unwrap_or(0), role);
        live.delete(du, dv);
        if patched.version != 2 || patched.applied != 2 || patched.edges != live.recs.len() {
            return Err(format!(
                "{kind} patch: version={} applied={} edges={} (mirror has {})",
                patched.version,
                patched.applied,
                patched.edges,
                live.recs.len()
            ));
        }
        // A patch containing a delete invalidates the cover, so both
        // of its ops must classify as recomputed.
        if patched.classes.recomputed != 2 {
            return Err(format!(
                "{kind} patch with a delete must classify recomputed=2, got {:?}",
                patched.classes
            ));
        }
        check_from_scratch(&mut tcp, &id, &live, &spec.config)?;
        mirrors.push((id, live, spec.config.clone()));
    }

    // Lifecycle end: create on one surface, retire on the other, and
    // both surfaces must then answer not-found.
    let tmp = GraphSpec {
        id: "sc-tmp".to_string(),
        instance: VariantInstance::Undirected {
            graph: Graph::from_edges(3, [(0, 1), (1, 2)]),
        },
        config: dsa_core::dist::EngineConfig::seeded(7),
    };
    hc.graph_create(&tmp)
        .map_err(|e| format!("tmp create: {e}"))?;
    tcp.graph_delete("sc-tmp")
        .map_err(|e| format!("tmp delete: {e}"))?;
    if tcp.graph_get("sc-tmp").is_ok() || hc.graph_get("sc-tmp").is_ok() {
        return Err("deleted graph still answers".into());
    }
    match tcp.graph_patch("sc-tmp", &[DeltaOp::Delete { u: 0, v: 1 }]) {
        Err(dsa_service::JobError::Remote(_)) => {}
        other => {
            return Err(format!(
                "patch of deleted graph: expected error, got {other:?}"
            ))
        }
    }

    // Phase 2 — a 1000-delta insert stream against a star graph.
    // Spoke-to-spoke chords commute through the center's covering
    // 2-paths; pendant edges to fresh vertices need repair, and once
    // accumulated repair debt crosses the threshold the registry
    // recomputes — so the stream exercises all three classes.
    const SPOKES: usize = 300;
    const CHORDS: usize = 700;
    const PENDANTS: usize = 300;
    let n = 1 + SPOKES + PENDANTS;
    let star: Vec<(usize, usize)> = (1..=SPOKES).map(|v| (0, v)).collect();
    let stream_cfg = dsa_core::dist::EngineConfig::seeded(11);
    let stream_spec = GraphSpec {
        id: "stream".to_string(),
        instance: VariantInstance::Undirected {
            graph: Graph::from_edges(n, star.clone()),
        },
        config: stream_cfg.clone(),
    };
    let created = tcp
        .graph_create(&stream_spec)
        .map_err(|e| format!("stream create: {e}"))?;
    if created.existed {
        return Err("stream graph already existed".into());
    }
    let mut stream_live = LiveEdges::of(&stream_spec.instance);
    let mut ops: Vec<(usize, usize)> = Vec::new();
    // Chords in lexicographic order over spoke pairs.
    'chords: for u in 1..=SPOKES {
        for v in (u + 1)..=SPOKES {
            if ops.len() == CHORDS {
                break 'chords;
            }
            ops.push((u, v));
        }
    }
    // Pendants: each connects a spoke to a brand-new vertex, so the
    // new edge cannot be covered by the working cover.
    for j in 0..PENDANTS {
        ops.push((1 + (j % SPOKES), 1 + SPOKES + j));
    }
    let maintenance = Instant::now();
    for &(u, v) in &ops {
        let op = DeltaOp::Insert {
            u,
            v,
            weight: None,
            role: None,
        };
        tcp.graph_patch("stream", std::slice::from_ref(&op))
            .map_err(|e| format!("stream patch +{u} {v}: {e}"))?;
        stream_live.insert(u, v, 0, None);
    }
    let maintenance = maintenance.elapsed();
    let meta = tcp
        .graph_get("stream")
        .map_err(|e| format!("stream get: {e}"))?;
    let classes = meta.classes;
    if meta.version != ops.len() as u64 || meta.edges != SPOKES + ops.len() {
        return Err(format!(
            "stream meta: version={} edges={}, expected {} and {}",
            meta.version,
            meta.edges,
            ops.len(),
            SPOKES + ops.len()
        ));
    }
    let class_sum = classes.commuted + classes.repaired + classes.recomputed;
    if class_sum != ops.len() as u64 {
        return Err(format!(
            "stream classes sum to {class_sum}, expected {}: {classes:?}",
            ops.len()
        ));
    }
    // The issue's acceptance bar: a stream that is >= 50% covered
    // inserts must show commuted deltas.
    if classes.commuted < (ops.len() as u64) / 2 {
        return Err(format!(
            "expected >= {} commuted deltas, got {:?}",
            ops.len() / 2,
            classes
        ));
    }
    if classes.repaired == 0 || classes.recomputed == 0 {
        return Err(format!(
            "expected the stream to exercise repair and recompute too: {classes:?}"
        ));
    }
    // The served spanner is still exactly the from-scratch answer.
    check_from_scratch(&mut tcp, "stream", &stream_live, &stream_cfg)?;

    // Maintenance must beat recomputing from scratch after every
    // delta. Estimate the per-delta solve cost by timing fresh solves
    // of prefix snapshots (distinct cache keys, so every one is a real
    // engine run) and extrapolating to one solve per delta.
    let prefixes = [100, 300, 500, 700, 900];
    let solves = Instant::now();
    for &p in &prefixes {
        let mut snap = LiveEdges::of(&stream_spec.instance);
        for &(u, v) in &ops[..p] {
            snap.insert(u, v, 0, None);
        }
        let spec = JobSpec {
            instance: snap.instance(),
            config: stream_cfg.clone(),
            timeout: None,
        };
        tcp.run(&spec)
            .map_err(|e| format!("prefix {p} solve: {e}"))?;
    }
    let per_solve = solves.elapsed().as_secs_f64() / prefixes.len() as f64;
    let extrapolated = per_solve * ops.len() as f64;
    if maintenance.as_secs_f64() >= extrapolated {
        return Err(format!(
            "incremental maintenance ({:.3}s for {} deltas) did not beat {} extrapolated \
             from-scratch solves ({:.3}s)",
            maintenance.as_secs_f64(),
            ops.len(),
            ops.len(),
            extrapolated
        ));
    }

    // The per-graph gauges, scraped the way CI scrapes them.
    let prom = hc
        .metrics_prometheus()
        .map_err(|e| format!("prometheus metrics: {e}"))?;
    let live_line = format!("spanner_graphs_live {}", mirrors.len() + 1);
    if !prom.lines().any(|l| l == live_line) {
        return Err(format!("exposition is missing `{live_line}`"));
    }
    let commuted_prefix = "spanner_graph_deltas_by_class_total{class=\"commuted\"} ";
    let commuted_total: u64 = prom
        .lines()
        .find_map(|l| l.strip_prefix(commuted_prefix))
        .ok_or("exposition is missing the commuted delta counter")?
        .parse()
        .map_err(|e| format!("commuted counter did not parse: {e}"))?;
    if commuted_total < classes.commuted {
        return Err(format!(
            "service-wide commuted counter {commuted_total} < stream's {}",
            classes.commuted
        ));
    }

    // The artifact line CI extracts into graph_deltas.json.
    println!(
        "{{\"graphs_self_check\":{{\"deltas\":{},\"commuted\":{},\"repaired\":{},\
         \"recomputed\":{},\"maintenance_secs\":{:.6},\"per_solve_secs\":{:.6},\
         \"extrapolated_secs\":{:.6}}}}}",
        ops.len(),
        classes.commuted,
        classes.repaired,
        classes.recomputed,
        maintenance.as_secs_f64(),
        per_solve,
        extrapolated
    );

    // Capture every graph's spanner bytes on both surfaces, then
    // restart on the same directory.
    let mut ids: Vec<&str> = mirrors.iter().map(|(id, _, _)| id.as_str()).collect();
    ids.push("stream");
    let mut raws: Vec<(String, u64, Vec<u8>, Vec<u8>)> = Vec::new();
    for id in &ids {
        let version = tcp
            .graph_get(id)
            .map_err(|e| format!("{id} get: {e}"))?
            .version;
        let t = tcp
            .graph_spanner_raw(id)
            .map_err(|e| format!("{id} spanner raw tcp: {e}"))?;
        let (status, h) = hc
            .graph_spanner_raw(id)
            .map_err(|e| format!("{id} spanner raw http: {e}"))?;
        if status != 200 {
            return Err(format!("{id} spanner raw http: HTTP {status}"));
        }
        raws.push((id.to_string(), version, t, h));
    }
    export_trace(&service, trace_dir)?;
    http.shutdown();
    server.shutdown();
    drop(tcp);
    drop(hc);
    drop(service);

    // Phase 3 — warm restart: replaying the create+delta log must
    // rebuild every graph, and both surfaces must re-serve every
    // spanner byte-identically from the store, without engine runs.
    // The reopened LRU is deliberately too small to warm-hold every
    // record, so some answers must travel the verified disk path.
    let warm_cfg = ServiceConfig {
        cache_capacity: 2,
        ..graphs_cfg.clone()
    };
    let service = Arc::new(
        Service::open(&warm_cfg).map_err(|e| format!("reopen store {}: {e}", dir.display()))?,
    );
    if service.graphs_live() != ids.len() {
        return Err(format!(
            "restart replayed {} graphs, expected {}",
            service.graphs_live(),
            ids.len()
        ));
    }
    let server = Server::with_service("127.0.0.1:0", Arc::clone(&service))
        .map_err(|e| format!("bind ephemeral port: {e}"))?;
    let http = HttpServer::with_service("127.0.0.1:0", Arc::clone(&service))
        .map_err(|e| format!("bind ephemeral http port: {e}"))?;
    let mut tcp = Client::connect(server.addr()).map_err(|e| format!("tcp reconnect: {e}"))?;
    let mut hc = HttpClient::connect(http.addr()).map_err(|e| format!("http reconnect: {e}"))?;
    for (id, version, tcp_raw, http_raw) in &raws {
        let meta = tcp
            .graph_get(id)
            .map_err(|e| format!("{id} get after restart: {e}"))?;
        if meta.version != *version {
            return Err(format!(
                "{id}: restart replayed to version {}, expected {version}",
                meta.version
            ));
        }
        let t2 = tcp
            .graph_spanner_raw(id)
            .map_err(|e| format!("{id} spanner after restart (tcp): {e}"))?;
        if t2 != *tcp_raw {
            return Err(format!(
                "{id}: TCP spanner not byte-identical after restart"
            ));
        }
        let (status, h2) = hc
            .graph_spanner_raw(id)
            .map_err(|e| format!("{id} spanner after restart (http): {e}"))?;
        if status != 200 || h2 != *http_raw {
            return Err(format!(
                "{id}: HTTP spanner not byte-identical after restart (HTTP {status})"
            ));
        }
    }
    let m = service.metrics();
    if m.cache_misses != 0 {
        return Err(format!(
            "post-restart spanner reads ran the engine {} times; all must come from the store",
            m.cache_misses
        ));
    }
    if m.disk_hits == 0 {
        return Err("post-restart spanner reads never touched the disk store".into());
    }
    export_trace(&service, trace_dir)?;
    http.shutdown();
    server.shutdown();
    drop(tcp);
    drop(hc);
    drop(service);
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(())
}
