//! `spanner-cli` — command-line client for `spanner-serve`.
//!
//! ```text
//! spanner-cli [--addr HOST:PORT] [--http] ping
//! spanner-cli [--addr HOST:PORT] [--http] stats
//! spanner-cli [--addr HOST:PORT] [--http] run --variant KIND --seed N
//!             [--input FILE|-] [--clients "IDS"] [--servers "IDS"]
//!             [--timeout-ms N] [--accept-denominator N]
//!             [--shards N] [--no-monotone] [--no-rounding] [--ids]
//!             [--retries N] [--retry-base-ms MS]
//! spanner-cli [--addr HOST:PORT] [--http] graph create --id ID
//!             --variant KIND --seed N [--input FILE|-]
//!             [--clients "IDS"] [--servers "IDS"]
//!             [--accept-denominator N] [--no-monotone] [--no-rounding]
//! spanner-cli [--addr HOST:PORT] [--http] graph patch --id ID [--input FILE|-]
//! spanner-cli [--addr HOST:PORT] [--http] graph <get|spanner|delete> --id ID
//! ```
//!
//! `graph` drives the named long-lived graphs API: `create` reads the
//! initial edge list (same formats as `run`), `patch` reads delta-op
//! lines — `+ u v` / `+ u v WEIGHT` / `+ u v client|server|both`
//! inserts, `- u v` deletes, blank lines and `#` comments skipped —
//! and `spanner` prints the maintained spanner as `u v` lines.
//! Responses are byte-identical whether the server repaired the cover
//! incrementally or recomputed; see the README's Graphs API section.
//!
//! `--retries N` retries a `run` up to `N` times when the server sheds
//! it (HTTP 429 / wire `busy`, honoring the server's retry hint),
//! cancels it, or drops the connection — with capped jittered
//! exponential backoff starting at `--retry-base-ms MS` (default 50).
//! Safe to use blindly: a job response is a pure function of the spec,
//! so a retried submission can only return the same bytes.
//!
//! `--http` speaks the HTTP/JSON facade instead of the TCP wire
//! protocol — `run` becomes `POST /v1/jobs`, `stats` becomes
//! `GET /v1/metrics`, and `ping` becomes `GET /healthz` — against the
//! port given to `spanner-serve --http-port`. Either way the response
//! is the same: both surfaces serve one cache.
//!
//! `--shards N` asks the server to run the engine with `N`
//! in-iteration shards (`0` = one per core); the spanner is identical
//! whatever the value (and the server may override it).
//!
//! `--log-level LEVEL` (error/warn/info/debug/trace, default `info`)
//! sets the threshold for structured stderr log lines; errors are
//! reported through the same [`dsa_runtime::obs`] format the server
//! uses, so mixed client/server logs grep uniformly.
//!
//! `run` reads a [`dsa_graphs::io`] edge list from `--input` (default
//! stdin; weighted lines `u v w` for the weighted variant, tail/head
//! lines for directed), submits it, and prints a summary plus the
//! spanner as `u v` lines (or raw edge ids with `--ids`). For the
//! client-server variant, `--clients`/`--servers` take
//! whitespace-separated edge ids of the input edge list.

#![forbid(unsafe_code)]

use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;

use dsa_core::dist::{VariantInstance, VariantKind};
use dsa_graphs::io as gio;
use dsa_graphs::EdgeSet;
use dsa_service::{
    Client, DeltaOp, GraphCreated, GraphMeta, GraphPatched, GraphSpannerResult, GraphSpec,
    HttpClient, JobError, JobResponse, JobSpec, RetryPolicy,
};

const USAGE: &str =
    "usage: spanner-cli [--addr HOST:PORT] [--http] [--log-level LEVEL] <ping|stats|run|graph> [options]\n\
     run options: --variant <undirected|directed|weighted|client-server> --seed N\n\
     \x20            [--input FILE|-] [--clients \"IDS\"] [--servers \"IDS\"]\n\
     \x20            [--timeout-ms N] [--accept-denominator N] [--shards N]\n\
     \x20            [--no-monotone] [--no-rounding] [--ids]\n\
     \x20            [--retries N] [--retry-base-ms MS]\n\
     graph subcommands: create --id ID --variant KIND --seed N [--input FILE|-]\n\
     \x20                    [--clients \"IDS\"] [--servers \"IDS\"]\n\
     \x20                    [--accept-denominator N] [--no-monotone] [--no-rounding]\n\
     \x20                  patch --id ID [--input FILE|-]   (op lines: `+ u v [w|role]`, `- u v`)\n\
     \x20                  get|spanner|delete --id ID";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Explicit `--help` is a successful invocation, unlike bad usage.
fn help() -> ! {
    println!("{USAGE}");
    std::process::exit(0);
}

fn fail(msg: &str) -> ! {
    dsa_runtime::obs::error("spanner-cli", msg, &[]);
    std::process::exit(1);
}

struct RunArgs {
    id: Option<String>,
    variant: Option<VariantKind>,
    seed: Option<u64>,
    input: String,
    clients: Option<String>,
    servers: Option<String>,
    timeout_ms: Option<u64>,
    accept_denominator: Option<u64>,
    shards: Option<u64>,
    monotone: bool,
    rounding: bool,
    print_ids: bool,
    retries: u32,
    retry_base_ms: u64,
}

/// The transport behind every CLI command: the TCP wire protocol or
/// the HTTP/JSON facade. Both answer with the same [`JobResponse`]
/// bytes-for-bytes semantics, so the rest of the CLI is agnostic.
enum Transport {
    Tcp(Client),
    Http(HttpClient),
}

impl Transport {
    fn run(
        &mut self,
        spec: &JobSpec,
        policy: Option<&RetryPolicy>,
    ) -> Result<JobResponse, JobError> {
        match (self, policy) {
            (Transport::Tcp(c), None) => c.run(spec),
            (Transport::Tcp(c), Some(p)) => c.run_with_retry(spec, p),
            (Transport::Http(c), None) => c.run(spec),
            (Transport::Http(c), Some(p)) => c.run_with_retry(spec, p),
        }
    }

    fn stats_json(&mut self) -> Result<String, JobError> {
        match self {
            Transport::Tcp(c) => c.stats_json(),
            Transport::Http(c) => c.metrics_json(),
        }
    }

    fn ping(&mut self) -> Result<(), JobError> {
        match self {
            Transport::Tcp(c) => c.ping(),
            Transport::Http(c) => c.healthz(),
        }
    }

    fn graph_create(&mut self, spec: &GraphSpec) -> Result<GraphCreated, JobError> {
        match self {
            Transport::Tcp(c) => c.graph_create(spec),
            Transport::Http(c) => c.graph_create(spec),
        }
    }

    fn graph_patch(&mut self, id: &str, ops: &[DeltaOp]) -> Result<GraphPatched, JobError> {
        match self {
            Transport::Tcp(c) => c.graph_patch(id, ops),
            Transport::Http(c) => c.graph_patch(id, ops),
        }
    }

    fn graph_get(&mut self, id: &str) -> Result<GraphMeta, JobError> {
        match self {
            Transport::Tcp(c) => c.graph_get(id),
            Transport::Http(c) => c.graph_get(id),
        }
    }

    fn graph_spanner(&mut self, id: &str) -> Result<GraphSpannerResult, JobError> {
        match self {
            Transport::Tcp(c) => c.graph_spanner(id),
            Transport::Http(c) => c.graph_spanner(id),
        }
    }

    fn graph_delete(&mut self, id: &str) -> Result<(), JobError> {
        match self {
            Transport::Tcp(c) => c.graph_delete(id),
            Transport::Http(c) => c.graph_delete(id),
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7071".to_string();
    let mut http = false;
    let mut rest = &argv[..];
    loop {
        match rest.first().map(String::as_str) {
            Some("--addr") => {
                if rest.len() < 2 {
                    usage();
                }
                addr = rest[1].clone();
                rest = &rest[2..];
            }
            Some("--http") => {
                http = true;
                rest = &rest[1..];
            }
            Some("--log-level") => {
                if rest.len() < 2 {
                    usage();
                }
                match rest[1].parse() {
                    Ok(level) => dsa_runtime::obs::set_log_level(level),
                    Err(_) => fail(&format!(
                        "invalid value `{}` for --log-level (expected error/warn/info/debug/trace)",
                        rest[1]
                    )),
                }
                rest = &rest[2..];
            }
            _ => break,
        }
    }
    let Some(command) = rest.first() else { usage() };
    let connect = || -> Transport {
        if http {
            Transport::Http(
                HttpClient::connect(addr.as_str())
                    .unwrap_or_else(|e| fail(&format!("cannot connect to http://{addr}: {e}"))),
            )
        } else {
            Transport::Tcp(
                Client::connect(addr.as_str())
                    .unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}"))),
            )
        }
    };
    match command.as_str() {
        "--help" | "-h" => help(),
        "ping" => {
            let mut client = connect();
            match client.ping() {
                Ok(()) => {
                    println!("pong from {addr}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&format!("ping: {e}")),
            }
        }
        "stats" => {
            let mut client = connect();
            match client.stats_json() {
                Ok(json) => {
                    println!("{json}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&format!("stats: {e}")),
            }
        }
        "run" => run_command(&rest[1..], connect),
        "graph" => graph_command(&rest[1..], connect),
        other => {
            dsa_runtime::obs::error("spanner-cli", "unknown command", &[("command", &other)]);
            usage()
        }
    }
}

fn run_command(args: &[String], connect: impl FnOnce() -> Transport) -> ExitCode {
    let args = parse_run_args(args);
    let variant = args
        .variant
        .unwrap_or_else(|| fail("--variant is required"));
    let seed = args.seed.unwrap_or_else(|| fail("--seed is required"));
    let text = read_input(&args.input);
    let instance = build_instance(variant, &text, &args);

    let mut spec = JobSpec::new(instance, seed);
    if let Some(d) = args.accept_denominator {
        spec.config.accept_denominator = d;
    }
    if let Some(s) = args.shards {
        spec.config.num_shards = s as usize;
    }
    spec.config.monotone_stars = args.monotone;
    spec.config.round_densities = args.rounding;
    spec.timeout = args.timeout_ms.map(Duration::from_millis);

    let policy = (args.retries > 0).then(|| RetryPolicy {
        base: Duration::from_millis(args.retry_base_ms),
        // Jitter from the job seed: concurrent CLI invocations across
        // a fleet naturally de-synchronize, one invocation replays.
        seed,
        ..RetryPolicy::new(args.retries)
    });
    let mut client = connect();
    let resp = client
        .run(&spec, policy.as_ref())
        .unwrap_or_else(|e| fail(&format!("run: {e}")));
    println!(
        "variant {} key {:016x} converged {} iterations {} local-rounds {} spanner {} edges",
        resp.kind,
        resp.key,
        resp.converged,
        resp.iterations,
        resp.local_rounds,
        resp.spanner.len(),
    );
    if args.print_ids {
        println!(
            "{}",
            resp.spanner
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        );
    } else {
        // Echo spanner edges as endpoint pairs of the *input* graph.
        let endpoints = endpoints_of(&spec.instance);
        for &e in &resp.spanner {
            let (u, v) = endpoints[e];
            println!("{u} {v}");
        }
    }
    ExitCode::SUCCESS
}

fn graph_command(args: &[String], connect: impl FnOnce() -> Transport) -> ExitCode {
    let Some(op) = args.first() else {
        fail("graph needs a subcommand: create|patch|get|spanner|delete")
    };
    let args = parse_run_args(&args[1..]);
    let id = args
        .id
        .clone()
        .unwrap_or_else(|| fail("--id is required for graph subcommands"));
    let mut client = connect();
    match op.as_str() {
        "create" => {
            let variant = args
                .variant
                .unwrap_or_else(|| fail("--variant is required"));
            let seed = args.seed.unwrap_or_else(|| fail("--seed is required"));
            if args.timeout_ms.is_some() || args.shards.is_some() {
                fail("graph create does not take --timeout-ms or --shards (execution policy is per-read, not graph identity)");
            }
            let text = read_input(&args.input);
            let instance = build_instance(variant, &text, &args);
            // Same seeded default config a `run` job starts from; the
            // per-read knobs (timeout, shards) are rejected above.
            let mut spec = GraphSpec {
                id,
                instance,
                config: dsa_core::dist::EngineConfig::seeded(seed),
            };
            if let Some(d) = args.accept_denominator {
                spec.config.accept_denominator = d;
            }
            spec.config.monotone_stars = args.monotone;
            spec.config.round_densities = args.rounding;
            let created = client
                .graph_create(&spec)
                .unwrap_or_else(|e| fail(&format!("graph create: {e}")));
            println!(
                "graph {} {} version {} edges {} spanner {} edges",
                created.id,
                if created.existed {
                    "existed"
                } else {
                    "created"
                },
                created.version,
                created.edges,
                created.spanner_size,
            );
        }
        "patch" => {
            let text = read_input(&args.input);
            let ops = dsa_service::wire::parse_delta_ops(&text)
                .unwrap_or_else(|e| fail(&format!("bad delta ops: {e}")));
            let patched = client
                .graph_patch(&id, &ops)
                .unwrap_or_else(|e| fail(&format!("graph patch: {e}")));
            println!(
                "graph {} version {} applied {} commuted {} repaired {} recomputed {} edges {}",
                patched.id,
                patched.version,
                patched.applied,
                patched.classes.commuted,
                patched.classes.repaired,
                patched.classes.recomputed,
                patched.edges,
            );
        }
        "get" => {
            let meta = client
                .graph_get(&id)
                .unwrap_or_else(|e| fail(&format!("graph get: {e}")));
            println!(
                "graph {} variant {} version {} vertices {} edges {} seed {} cover {} debt {} commuted {} repaired {} recomputed {}",
                meta.id,
                meta.kind,
                meta.version,
                meta.vertices,
                meta.edges,
                meta.seed,
                meta.cover_size
                    .map_or_else(|| "none".to_string(), |n| n.to_string()),
                meta.debt,
                meta.classes.commuted,
                meta.classes.repaired,
                meta.classes.recomputed,
            );
        }
        "spanner" => {
            let s = client
                .graph_spanner(&id)
                .unwrap_or_else(|e| fail(&format!("graph spanner: {e}")));
            println!(
                "graph {} version {} key {:016x} variant {} converged {} iterations {} local-rounds {} spanner {} edges",
                s.id,
                s.version,
                s.key,
                s.kind,
                s.converged,
                s.iterations,
                s.local_rounds,
                s.edges.len(),
            );
            for &(u, v) in &s.edges {
                println!("{u} {v}");
            }
        }
        "delete" => {
            client
                .graph_delete(&id)
                .unwrap_or_else(|e| fail(&format!("graph delete: {e}")));
            println!("graph {id} deleted");
        }
        other => fail(&format!(
            "unknown graph subcommand `{other}` (expected create|patch|get|spanner|delete)"
        )),
    }
    ExitCode::SUCCESS
}

fn parse_run_args(args: &[String]) -> RunArgs {
    let mut out = RunArgs {
        id: None,
        variant: None,
        seed: None,
        input: "-".to_string(),
        clients: None,
        servers: None,
        timeout_ms: None,
        accept_denominator: None,
        shards: None,
        monotone: true,
        rounding: true,
        print_ids: false,
        retries: 0,
        retry_base_ms: 50,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("missing value for {name}")))
        };
        match flag.as_str() {
            "--id" => out.id = Some(value("--id")),
            "--variant" => {
                out.variant = Some(
                    value("--variant")
                        .parse()
                        .unwrap_or_else(|e: String| fail(&e)),
                )
            }
            "--seed" => out.seed = Some(parse_num(&value("--seed"), "--seed")),
            "--input" => out.input = value("--input"),
            "--clients" => out.clients = Some(value("--clients")),
            "--servers" => out.servers = Some(value("--servers")),
            "--timeout-ms" => {
                out.timeout_ms = Some(parse_num(&value("--timeout-ms"), "--timeout-ms"))
            }
            "--accept-denominator" => {
                out.accept_denominator = Some(parse_num(
                    &value("--accept-denominator"),
                    "--accept-denominator",
                ))
            }
            "--shards" => out.shards = Some(parse_num(&value("--shards"), "--shards")),
            "--no-monotone" => out.monotone = false,
            "--no-rounding" => out.rounding = false,
            "--ids" => out.print_ids = true,
            "--retries" => out.retries = parse_num(&value("--retries"), "--retries") as u32,
            "--retry-base-ms" => {
                out.retry_base_ms = parse_num(&value("--retry-base-ms"), "--retry-base-ms")
            }
            other => fail(&format!("unknown run option {other}")),
        }
    }
    out
}

fn parse_num(value: &str, flag: &str) -> u64 {
    value
        .parse()
        .unwrap_or_else(|_| fail(&format!("invalid value `{value}` for {flag}")))
}

fn read_input(path: &str) -> String {
    if path == "-" {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .unwrap_or_else(|e| fail(&format!("reading stdin: {e}")));
        text
    } else {
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("reading {path}: {e}")))
    }
}

fn parse_ids(text: &str, universe: usize, what: &str) -> EdgeSet {
    // Same validator the server runs, so CLI and wire never drift.
    dsa_service::wire::parse_id_list(text, universe, what).unwrap_or_else(|e| fail(&e.to_string()))
}

fn build_instance(variant: VariantKind, text: &str, args: &RunArgs) -> VariantInstance {
    match variant {
        VariantKind::Undirected => {
            let (graph, w) =
                gio::parse_edge_list(text).unwrap_or_else(|e| fail(&format!("bad input: {e}")));
            if w.is_some() {
                fail("undirected variant takes an unweighted edge list");
            }
            VariantInstance::Undirected { graph }
        }
        VariantKind::Weighted => {
            let (graph, w) =
                gio::parse_edge_list(text).unwrap_or_else(|e| fail(&format!("bad input: {e}")));
            let weights = w.unwrap_or_else(|| fail("weighted variant needs `u v w` edge lines"));
            VariantInstance::Weighted { graph, weights }
        }
        VariantKind::Directed => {
            let graph = gio::parse_directed_edge_list(text)
                .unwrap_or_else(|e| fail(&format!("bad input: {e}")));
            VariantInstance::Directed { graph }
        }
        VariantKind::ClientServer => {
            let (graph, w) =
                gio::parse_edge_list(text).unwrap_or_else(|e| fail(&format!("bad input: {e}")));
            if w.is_some() {
                fail("client-server variant takes an unweighted edge list");
            }
            let m = graph.num_edges();
            let clients = parse_ids(
                args.clients
                    .as_deref()
                    .unwrap_or_else(|| fail("--clients is required for client-server")),
                m,
                "client",
            );
            let servers = parse_ids(
                args.servers
                    .as_deref()
                    .unwrap_or_else(|| fail("--servers is required for client-server")),
                m,
                "server",
            );
            VariantInstance::ClientServer {
                graph,
                clients,
                servers,
            }
        }
    }
}

fn endpoints_of(instance: &VariantInstance) -> Vec<(usize, usize)> {
    match instance {
        VariantInstance::Undirected { graph }
        | VariantInstance::Weighted { graph, .. }
        | VariantInstance::ClientServer { graph, .. } => {
            graph.edges().map(|(_, u, v)| (u, v)).collect()
        }
        VariantInstance::Directed { graph } => graph.edges().map(|(_, u, v)| (u, v)).collect(),
    }
}
