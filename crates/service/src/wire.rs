//! The length-prefixed request/response wire protocol of
//! `spanner-serve`.
//!
//! # Framing
//!
//! Every message is one *frame*: a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 text. Frames larger than
//! [`MAX_FRAME`] are rejected. A connection carries any number of
//! request frames, each answered by exactly one response frame, until
//! the client closes it.
//!
//! # Requests
//!
//! A request payload is a line-oriented header, one `key value` pair
//! per line, opened by a command line:
//!
//! ```text
//! run v1                  |  stats v1  |  ping v1
//! variant weighted
//! seed 42
//! accept-denominator 8    # optional, default 8
//! monotone 1              # optional, default 1
//! round-densities 1       # optional, default 1
//! max-iterations 1000000  # optional
//! shards 4                # optional, default 1; 0 = one per core;
//!                         # capped at MAX_SHARDS at decode time
//! timeout-ms 2000         # optional
//! clients 0 2 5           # client-server only
//! servers 1 3 4           # client-server only
//! graph                   # the rest is a dsa-graphs edge list
//! # n 5
//! 0 1 3
//! ...
//! ```
//!
//! The graph body is the [`dsa_graphs::io`] text format (weighted for
//! the `weighted` variant, directed for `directed`); `clients` /
//! `servers` list edge ids of the parsed (normalized) edge list.
//!
//! # Responses
//!
//! ```text
//! ok run                  |  ok stats        |  ok ping  |  err <message>  |  busy <retry-after-ms>
//! key 1f2e3d4c5b6a7988    |  {"jobs_...": 1}
//! variant weighted
//! converged 1
//! iterations 12
//! local-rounds 84
//! star-fallbacks 0
//! spanner-size 3
//! spanner 0 4 7
//! ```
//!
//! A `run` response is a pure function of the job spec — no timing, no
//! cached/coalesced flag — so a cache hit is byte-identical to the
//! cold computation of the same spec. `shards` requests parallel
//! in-engine execution; it cannot change the response bytes (the
//! engine is shard-count-deterministic), is not part of the job's
//! cache identity, and may be overridden by the server's `--shards`
//! flag.

use std::io::{Read, Write};
use std::time::Duration;

use dsa_core::dist::{EngineConfig, VariantInstance, VariantKind};
use dsa_graphs::{io as gio, EdgeSet};

use crate::graphs::{
    valid_graph_id, DeltaOp, EdgeRole, GraphCreated, GraphMeta, GraphPatched, GraphSpannerResult,
    GraphSpec,
};
use crate::job::{JobError, JobResponse, JobSpec};

/// Upper bound on a frame payload (64 MiB): a million-edge graph fits
/// with a wide margin, while a corrupt length prefix cannot trigger an
/// absurd allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// The protocol version this build speaks. Version 2 adds the `hello`
/// handshake and the `graph-*` named-graph frames; every v1 command is
/// unchanged byte-for-byte, so v1 clients are served without
/// negotiation.
pub const PROTO_VERSION: u64 = 2;

/// Cap applied to a request's `shards` value at decode time (shared
/// with the HTTP facade). The engine already clamps its shard count to
/// `max(64, cores)` internally, so any value at or above that is "as
/// wide as the machine allows" — capping here preserves that meaning
/// (mirroring the `--shards` operator override, which feeds the same
/// clamp) while keeping a hostile `shards 2^63` from being truncated
/// by the `u64 -> usize` conversion on 32-bit targets. Shard count is
/// execution policy, never job identity, so the cap cannot change
/// response bytes.
pub const MAX_SHARDS: u64 = 1 << 16;

/// Decodes a wire/HTTP `shards` value: capped, then safely narrowed.
pub(crate) fn decode_shards(requested: u64) -> usize {
    requested.min(MAX_SHARDS) as usize // dsa-lint: allow(DSA-C001, reason="value capped at MAX_SHARDS, far below usize::MAX, before narrowing")
}

/// Writes one frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    assert!(payload.len() <= MAX_FRAME, "frame exceeds MAX_FRAME");
    w.write_all(&(payload.len() as u32).to_be_bytes())?; // dsa-lint: allow(DSA-C001, reason="asserted payload.len() <= MAX_FRAME, far below u32::MAX, above")
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on clean EOF before the first length
/// byte.
pub fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A decoded request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Run one spanner job (boxed: a spec carries a whole graph, far
    /// larger than the other variants).
    Run(Box<JobSpec>),
    /// Report the service metrics snapshot as JSON.
    Stats,
    /// Liveness probe.
    Ping,
    /// Protocol negotiation (`hello vN`, v2+). The server answers with
    /// `min(N, PROTO_VERSION)` and its feature list. Optional: a
    /// client may skip the handshake and speak v1 directly.
    Hello {
        /// The highest protocol version the client speaks.
        proto: u64,
    },
    /// Create a named graph (v2).
    GraphCreate(Box<GraphSpec>),
    /// Apply edge deltas to a named graph (v2).
    GraphPatch {
        /// The graph id.
        id: String,
        /// The deltas, applied in order.
        ops: Vec<DeltaOp>,
    },
    /// Read a named graph's metadata/stats (v2).
    GraphGet {
        /// The graph id.
        id: String,
    },
    /// Read a named graph's maintained spanner (v2).
    GraphSpanner {
        /// The graph id.
        id: String,
    },
    /// Retire a named graph (v2).
    GraphDelete {
        /// The graph id.
        id: String,
    },
}

/// A decoded response.
#[derive(Clone, Debug)]
pub enum Response {
    /// The job's result.
    Run(JobResponse),
    /// The metrics snapshot, as one JSON line.
    Stats(String),
    /// Answer to [`Request::Ping`].
    Pong,
    /// The server shed the request at admission (overload). The job
    /// was not started; retrying after the hinted delay is safe.
    Busy {
        /// Suggested client wait before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The server rejected or failed the request.
    Error(String),
    /// Answer to [`Request::Hello`].
    Hello {
        /// The negotiated protocol version.
        proto: u64,
        /// Feature tokens the server advertises (e.g. `graphs`).
        features: Vec<String>,
    },
    /// Answer to [`Request::GraphCreate`].
    GraphCreated(GraphCreated),
    /// Answer to [`Request::GraphPatch`].
    GraphPatched(GraphPatched),
    /// Answer to [`Request::GraphGet`].
    GraphMeta(GraphMeta),
    /// Answer to [`Request::GraphSpanner`].
    GraphSpanner(GraphSpannerResult),
    /// Answer to [`Request::GraphDelete`].
    GraphDeleted {
        /// The retired graph's id.
        id: String,
    },
}

fn parse_u64(value: &str, what: &str) -> Result<u64, JobError> {
    value
        .parse()
        .map_err(|_| JobError::Protocol(format!("invalid {what}: `{value}`")))
}

fn parse_flag(value: &str, what: &str) -> Result<bool, JobError> {
    match value {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(JobError::Protocol(format!(
            "invalid {what}: `{value}` (expected 0 or 1)"
        ))),
    }
}

/// Parses a whitespace-separated edge-id list into a set over
/// `0..universe`, rejecting out-of-range ids. Shared by the request
/// decoder and `spanner-cli` so the two never drift.
pub fn parse_id_list(value: &str, universe: usize, what: &str) -> Result<EdgeSet, JobError> {
    let mut set = EdgeSet::new(universe);
    for field in value.split_whitespace() {
        let id = narrow_usize(parse_u64(field, what)?, what)?;
        if id >= universe {
            return Err(JobError::Protocol(format!(
                "{what} id {id} out of range for {universe} edges"
            )));
        }
        set.insert(id);
    }
    Ok(set)
}

/// Encodes a job spec as a `run v1` request payload.
pub fn encode_request(spec: &JobSpec) -> String {
    format!("run v1\n{}", encode_run_body(spec))
}

/// Encodes the body of a `run v1` payload (everything after the
/// command line). Shared with `graph-create v2`, whose body after the
/// `id` line is exactly a run body — sharing the builder (instead of
/// stripping the command line off a full encoding) keeps the
/// relationship structural rather than an assertable invariant.
fn encode_run_body(spec: &JobSpec) -> String {
    let mut out = String::new();
    let kind = spec.instance.kind();
    out.push_str(&format!("variant {kind}\n"));
    out.push_str(&format!("seed {}\n", spec.config.seed));
    out.push_str(&format!(
        "accept-denominator {}\n",
        spec.config.accept_denominator
    ));
    out.push_str(&format!(
        "monotone {}\n",
        u8::from(spec.config.monotone_stars)
    ));
    out.push_str(&format!(
        "round-densities {}\n",
        u8::from(spec.config.round_densities)
    ));
    out.push_str(&format!("max-iterations {}\n", spec.config.max_iterations));
    if spec.config.num_shards != 1 {
        out.push_str(&format!("shards {}\n", spec.config.num_shards));
    }
    if let Some(t) = spec.timeout {
        // Saturating: `as_millis` is u128 and a pathological Duration
        // (Duration::MAX is ~5.8e14 years) must encode as "wait
        // practically forever", not wrap into a short deadline — and
        // the value must stay parseable by the u64 decoder.
        out.push_str(&format!("timeout-ms {}\n", saturating_millis(t)));
    }
    let graph_text = match &spec.instance {
        VariantInstance::Undirected { graph } => gio::to_edge_list(graph, None),
        VariantInstance::Weighted { graph, weights } => gio::to_edge_list(graph, Some(weights)),
        VariantInstance::Directed { graph } => gio::to_directed_edge_list(graph),
        VariantInstance::ClientServer {
            graph,
            clients,
            servers,
        } => {
            let ids = |s: &EdgeSet| {
                s.iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            out.push_str(&format!("clients {}\n", ids(clients)));
            out.push_str(&format!("servers {}\n", ids(servers)));
            gio::to_edge_list(graph, None)
        }
    };
    out.push_str("graph\n");
    out.push_str(&graph_text);
    out
}

/// Narrows a decoded `u64` into `usize`, failing the request (rather
/// than silently truncating on 32-bit targets) when it does not fit.
/// Shared by every decode path: the C-series lint (`DSA-C001`) bans
/// bare `as` narrowing on decoded values.
pub(crate) fn narrow_usize(x: u64, what: &str) -> Result<usize, JobError> {
    usize::try_from(x).map_err(|_| {
        JobError::Protocol(format!("{what} {x} exceeds this platform's address width"))
    })
}

/// A duration's millisecond count, saturated into `u64` (shared with
/// the HTTP facade's `timeout_ms` encoder).
pub(crate) fn saturating_millis(t: Duration) -> u64 {
    u64::try_from(t.as_millis()).unwrap_or(u64::MAX)
}

/// Encodes the `stats v1` request payload.
pub fn encode_stats_request() -> String {
    "stats v1\n".to_string()
}

/// Encodes the `ping v1` request payload.
pub fn encode_ping_request() -> String {
    "ping v1\n".to_string()
}

/// Encodes a `hello vN` handshake request.
pub fn encode_hello_request(proto: u64) -> String {
    format!("hello v{proto}\n")
}

/// Encodes a named-graph create as a `graph-create v2` payload.
///
/// The body after the `id` line is exactly a `run v1` body (the same
/// headers, the same graph text), so create decoding — and thus the
/// delta log, which stores these bytes — shares every normalization
/// rule with one-shot jobs. Execution policy (shards, timeout, timing)
/// is stripped: it is per-read, never part of a graph's definition.
pub fn encode_graph_create(spec: &GraphSpec) -> String {
    let mut config = spec.config.clone();
    config.num_shards = 1;
    config.cancel = None;
    config.collect_timings = false;
    let job = JobSpec {
        instance: spec.instance.clone(),
        config,
        timeout: None,
    };
    format!("graph-create v2\nid {}\n{}", spec.id, encode_run_body(&job))
}

/// Encodes a delta batch as a `graph-patch v2` payload. Op lines are
/// `+ u v` (insert), `+ u v <weight>` (weighted insert),
/// `+ u v client|server|both` (client-server insert), `- u v` (delete).
pub fn encode_graph_patch(id: &str, ops: &[DeltaOp]) -> String {
    let mut out = format!("graph-patch v2\nid {id}\nops\n");
    for op in ops {
        match *op {
            DeltaOp::Insert { u, v, weight, role } => {
                out.push_str(&format!("+ {u} {v}"));
                if let Some(w) = weight {
                    out.push_str(&format!(" {w}"));
                }
                if let Some(r) = role {
                    out.push_str(&format!(" {}", r.as_str()));
                }
                out.push('\n');
            }
            DeltaOp::Delete { u, v } => out.push_str(&format!("- {u} {v}\n")),
        }
    }
    out
}

/// Encodes a `graph-get v2` metadata request.
pub fn encode_graph_get(id: &str) -> String {
    format!("graph-get v2\nid {id}\n")
}

/// Encodes a `graph-spanner v2` read request.
pub fn encode_graph_spanner_request(id: &str) -> String {
    format!("graph-spanner v2\nid {id}\n")
}

/// Encodes a `graph-delete v2` request.
pub fn encode_graph_delete(id: &str) -> String {
    format!("graph-delete v2\nid {id}\n")
}

/// Decodes a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, JobError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| JobError::Protocol("request is not UTF-8".into()))?;
    let (head, rest) = text.split_once('\n').unwrap_or((text, ""));
    match head.trim_end() {
        "run v1" => decode_run_request(rest),
        "stats v1" => Ok(Request::Stats),
        "ping v1" => Ok(Request::Ping),
        "graph-create v2" => decode_graph_create_request(rest),
        "graph-patch v2" => decode_graph_patch_request(rest),
        "graph-get v2" => decode_graph_id_request(rest, |id| Request::GraphGet { id }),
        "graph-spanner v2" => decode_graph_id_request(rest, |id| Request::GraphSpanner { id }),
        "graph-delete v2" => decode_graph_id_request(rest, |id| Request::GraphDelete { id }),
        other => {
            if let Some(version) = other.strip_prefix("hello v") {
                let proto = parse_u64(version, "hello protocol version")?;
                if proto == 0 {
                    return Err(JobError::Protocol("protocol versions start at 1".into()));
                }
                return Ok(Request::Hello { proto });
            }
            Err(JobError::Protocol(format!(
                "unknown command `{other}` (expected `hello vN`, `run v1`, `stats v1`, \
                 `ping v1`, or a `graph-create|patch|get|spanner|delete v2` frame)"
            )))
        }
    }
}

/// Parses an `id <name>` line, validating the graph-id alphabet.
fn decode_id_line(line: &str) -> Result<String, JobError> {
    let line = line.trim();
    let id = line
        .strip_prefix("id ")
        .ok_or_else(|| JobError::Protocol(format!("expected `id <name>` line, got `{line}`")))?
        .trim();
    if !valid_graph_id(id) {
        return Err(JobError::Protocol(format!(
            "invalid graph id `{id}` (1-64 characters from [a-zA-Z0-9._-])"
        )));
    }
    Ok(id.to_string())
}

fn decode_graph_create_request(body: &str) -> Result<Request, JobError> {
    let (id_line, rest) = body
        .split_once('\n')
        .ok_or_else(|| JobError::Protocol("graph-create needs an `id` line".into()))?;
    let id = decode_id_line(id_line)?;
    // The body after `id` is a run-v1 body: one decoder, one set of
    // normalization and hardening rules (including the vertex-count
    // bound) for jobs, graph creates, and the delta log.
    let job = decode_run_spec(rest)?;
    if job.timeout.is_some() {
        return Err(JobError::Protocol(
            "graph-create does not take `timeout-ms` (timeouts are per-read)".into(),
        ));
    }
    if job.config.num_shards != 1 {
        return Err(JobError::Protocol(
            "graph-create does not take `shards` (execution policy is per-read)".into(),
        ));
    }
    Ok(Request::GraphCreate(Box::new(GraphSpec {
        id,
        instance: job.instance,
        config: job.config,
    })))
}

fn decode_graph_patch_request(body: &str) -> Result<Request, JobError> {
    let mut lines = body.lines();
    let id = decode_id_line(
        lines
            .next()
            .ok_or_else(|| JobError::Protocol("graph-patch needs an `id` line".into()))?,
    )?;
    match lines.next().map(str::trim) {
        Some("ops") => {}
        other => {
            return Err(JobError::Protocol(format!(
                "expected `ops` line after the id, got `{}`",
                other.unwrap_or("<end of frame>")
            )))
        }
    }
    let rest: Vec<&str> = lines.collect();
    let ops = parse_delta_ops(&rest.join("\n"))?;
    Ok(Request::GraphPatch { id, ops })
}

/// Parses a block of delta-op lines — `+ u v [weight|client|server|both]`
/// inserts, `- u v` deletes; blank lines and `#` comments are skipped.
/// Shared by the `graph-patch` frame decoder and `spanner-cli graph
/// patch`, so CLI and wire never drift.
pub fn parse_delta_ops(text: &str) -> Result<Vec<DeltaOp>, JobError> {
    let mut ops = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        ops.push(decode_delta_op(line)?);
    }
    Ok(ops)
}

/// Parses one delta-op line: `+ u v [weight|role]` or `- u v`. The
/// third insert operand disambiguates lexically (all digits: weight;
/// role word: role) so the decoder needs no variant knowledge — the
/// registry validates variant fit.
fn decode_delta_op(line: &str) -> Result<DeltaOp, JobError> {
    let malformed = || {
        JobError::Protocol(format!(
            "malformed delta op `{line}` (expected `+ u v [weight|client|server|both]` or `- u v`)"
        ))
    };
    let endpoint = |raw: &str| {
        parse_u64(raw, "delta endpoint").and_then(|x| narrow_usize(x, "delta endpoint"))
    };
    let fields: Vec<&str> = line.split_whitespace().collect();
    match fields.as_slice() {
        ["+", u, v] => Ok(DeltaOp::Insert {
            u: endpoint(u)?,
            v: endpoint(v)?,
            weight: None,
            role: None,
        }),
        ["+", u, v, extra] => {
            let (u, v) = (endpoint(u)?, endpoint(v)?);
            if extra.bytes().all(|b| b.is_ascii_digit()) {
                Ok(DeltaOp::Insert {
                    u,
                    v,
                    weight: Some(parse_u64(extra, "edge weight")?),
                    role: None,
                })
            } else if let Some(role) = EdgeRole::parse(extra) {
                Ok(DeltaOp::Insert {
                    u,
                    v,
                    weight: None,
                    role: Some(role),
                })
            } else {
                Err(malformed())
            }
        }
        ["-", u, v] => Ok(DeltaOp::Delete {
            u: endpoint(u)?,
            v: endpoint(v)?,
        }),
        _ => Err(malformed()),
    }
}

fn decode_graph_id_request(
    body: &str,
    build: impl FnOnce(String) -> Request,
) -> Result<Request, JobError> {
    let id_line = body.split('\n').next().unwrap_or("");
    Ok(build(decode_id_line(id_line)?))
}

fn decode_run_request(body: &str) -> Result<Request, JobError> {
    Ok(Request::Run(decode_run_spec(body)?))
}

/// Decodes a run-v1 body into its job spec (shared by `run v1` and
/// `graph-create v2`, which embeds the same body after its `id` line).
fn decode_run_spec(body: &str) -> Result<Box<JobSpec>, JobError> {
    let mut variant: Option<VariantKind> = None;
    let mut seed: Option<u64> = None;
    let mut accept_denominator: Option<u64> = None;
    let mut monotone: Option<bool> = None;
    let mut round_densities: Option<bool> = None;
    let mut max_iterations: Option<u64> = None;
    let mut shards: Option<usize> = None;
    let mut timeout: Option<Duration> = None;
    let mut clients_line: Option<String> = None;
    let mut servers_line: Option<String> = None;
    let mut graph_text: Option<&str> = None;

    let mut rest = body;
    while !rest.is_empty() {
        let (line, tail) = rest.split_once('\n').unwrap_or((rest, ""));
        let line_trimmed = line.trim();
        if line_trimmed == "graph" {
            graph_text = Some(tail);
            break;
        }
        rest = tail;
        if line_trimmed.is_empty() {
            continue;
        }
        // A bare key (e.g. `clients` with an empty id list) carries
        // an empty value.
        let (key, value) = line_trimmed.split_once(' ').unwrap_or((line_trimmed, ""));
        let value = value.trim();
        match key {
            "variant" => variant = Some(value.parse::<VariantKind>().map_err(JobError::Protocol)?),
            "seed" => seed = Some(parse_u64(value, "seed")?),
            "accept-denominator" => {
                accept_denominator = Some(parse_u64(value, "accept-denominator")?)
            }
            "monotone" => monotone = Some(parse_flag(value, "monotone")?),
            "round-densities" => round_densities = Some(parse_flag(value, "round-densities")?),
            "max-iterations" => max_iterations = Some(parse_u64(value, "max-iterations")?),
            "shards" => shards = Some(decode_shards(parse_u64(value, "shards")?)),
            "timeout-ms" => timeout = Some(Duration::from_millis(parse_u64(value, "timeout-ms")?)),
            "clients" => clients_line = Some(value.to_string()),
            "servers" => servers_line = Some(value.to_string()),
            other => return Err(JobError::Protocol(format!("unknown header `{other}`"))),
        }
    }

    let variant = variant.ok_or_else(|| JobError::Protocol("missing `variant` header".into()))?;
    let seed = seed.ok_or_else(|| JobError::Protocol("missing `seed` header".into()))?;
    let graph_text =
        graph_text.ok_or_else(|| JobError::Protocol("missing `graph` section".into()))?;
    check_declared_vertices(graph_text)?;

    let instance = match variant {
        VariantKind::Undirected => {
            let (graph, w) = gio::parse_edge_list(graph_text)
                .map_err(|e| JobError::Protocol(format!("bad graph: {e}")))?;
            if w.is_some() {
                return Err(JobError::Protocol(
                    "undirected variant takes an unweighted edge list".into(),
                ));
            }
            VariantInstance::Undirected { graph }
        }
        VariantKind::Weighted => {
            let (graph, w) = gio::parse_edge_list(graph_text)
                .map_err(|e| JobError::Protocol(format!("bad graph: {e}")))?;
            let weights = w.ok_or_else(|| {
                JobError::Protocol("weighted variant needs `u v w` edge lines".into())
            })?;
            VariantInstance::Weighted { graph, weights }
        }
        VariantKind::Directed => {
            let graph = gio::parse_directed_edge_list(graph_text)
                .map_err(|e| JobError::Protocol(format!("bad graph: {e}")))?;
            VariantInstance::Directed { graph }
        }
        VariantKind::ClientServer => {
            let (graph, w) = gio::parse_edge_list(graph_text)
                .map_err(|e| JobError::Protocol(format!("bad graph: {e}")))?;
            if w.is_some() {
                return Err(JobError::Protocol(
                    "client-server variant takes an unweighted edge list".into(),
                ));
            }
            let m = graph.num_edges();
            let clients = parse_id_list(
                &clients_line
                    .ok_or_else(|| JobError::Protocol("missing `clients` header".into()))?,
                m,
                "client",
            )?;
            let servers = parse_id_list(
                &servers_line
                    .ok_or_else(|| JobError::Protocol("missing `servers` header".into()))?,
                m,
                "server",
            )?;
            VariantInstance::ClientServer {
                graph,
                clients,
                servers,
            }
        }
    };

    let mut config = EngineConfig::seeded(seed);
    if let Some(d) = accept_denominator {
        if d == 0 {
            return Err(JobError::Protocol("accept-denominator must be >= 1".into()));
        }
        config.accept_denominator = d;
    }
    if let Some(m) = monotone {
        config.monotone_stars = m;
    }
    if let Some(r) = round_densities {
        config.round_densities = r;
    }
    if let Some(m) = max_iterations {
        config.max_iterations = m;
    }
    if let Some(s) = shards {
        config.num_shards = s;
    }

    Ok(Box::new(JobSpec {
        instance,
        config,
        timeout,
    }))
}

/// Vertex count every request may declare regardless of its size, so
/// sparse graphs over large id spaces (mostly isolated vertices) stay
/// servable over the wire.
pub const MIN_VERTEX_ALLOWANCE: u64 = 1 << 20;

/// Rejects a graph body whose `# n <count>` header declares more
/// vertices than the request can justify.
///
/// The frame cap bounds payload *bytes*, but `Graph::new(n)` allocates
/// per declared vertex, so without this check a ~60-byte frame could
/// demand gigabytes. The bound is `max(2 * body length + 1024,`
/// [`MIN_VERTEX_ALLOWANCE`]`)`: every non-isolated vertex occupies at
/// least one byte of some edge line, and the absolute allowance keeps
/// legitimate sparse graphs (big id space, few edges) inside the
/// protocol while capping a hostile header at ~megabytes of
/// allocation. The scan mirrors `dsa_graphs::io`'s header rule: the
/// first `# n <count>` comment wins.
fn check_declared_vertices(graph_text: &str) -> Result<(), JobError> {
    for line in graph_text.lines() {
        let Some(rest) = line.trim().strip_prefix('#') else {
            continue;
        };
        let fields: Vec<&str> = rest.split_whitespace().collect();
        // dsa-lint: allow(DSA-P003, reason="short-circuit: fields[0] only reached when len == 2")
        if fields.len() != 2 || fields[0] != "n" {
            continue;
        }
        // Unparseable counts fall through to the io parser's error.
        // dsa-lint: allow(DSA-P003, reason="arity checked just above, fields.len() == 2")
        if let Ok(n) = fields[1].parse::<u64>() {
            let limit = (2 * graph_text.len() as u64 + 1024).max(MIN_VERTEX_ALLOWANCE);
            if n > limit {
                return Err(JobError::Protocol(format!(
                    "declared vertex count {n} exceeds the request-size bound {limit}"
                )));
            }
        }
        return Ok(());
    }
    Ok(())
}

/// Encodes a job result as an `ok run` response payload.
///
/// Deterministic in the response: the serving path (cold, cached,
/// coalesced) leaves no trace in the bytes.
pub fn encode_run_response(resp: &JobResponse) -> String {
    let ids = resp
        .spanner
        .iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join(" ");
    format!(
        "ok run\nkey {:016x}\nvariant {}\nconverged {}\niterations {}\nlocal-rounds {}\nstar-fallbacks {}\nspanner-size {}\nspanner {}\n",
        resp.key,
        resp.kind,
        u8::from(resp.converged),
        resp.iterations,
        resp.local_rounds,
        resp.star_fallbacks,
        resp.spanner.len(),
        ids,
    )
}

/// Encodes a metrics snapshot as an `ok stats` response payload.
pub fn encode_stats_response(json: &str) -> String {
    format!("ok stats\n{json}\n")
}

/// Encodes the `ok ping` response payload.
pub fn encode_pong_response() -> String {
    "ok ping\n".to_string()
}

/// Encodes an error response payload.
pub fn encode_error_response(message: &str) -> String {
    // Keep the message single-line so the response stays parseable.
    format!("err {}\n", message.replace('\n', " "))
}

/// Encodes a `busy` response payload: the server shed the request at
/// admission and the client should retry after `retry_after_ms`.
pub fn encode_busy_response(retry_after_ms: u64) -> String {
    format!("busy {retry_after_ms}\n")
}

/// Encodes an `ok hello` handshake response.
pub fn encode_hello_response(proto: u64, features: &[&str]) -> String {
    if features.is_empty() {
        format!("ok hello\nproto {proto}\nfeatures\n")
    } else {
        format!("ok hello\nproto {proto}\nfeatures {}\n", features.join(" "))
    }
}

/// Encodes an `ok graph-create` response.
pub fn encode_graph_created(r: &GraphCreated) -> String {
    format!(
        "ok graph-create\nid {}\nversion {}\nedges {}\nspanner-size {}\nexisted {}\n",
        r.id,
        r.version,
        r.edges,
        r.spanner_size,
        u8::from(r.existed),
    )
}

/// Encodes an `ok graph-patch` response.
pub fn encode_graph_patched(r: &GraphPatched) -> String {
    format!(
        "ok graph-patch\nid {}\nversion {}\napplied {}\ncommuted {}\nrepaired {}\nrecomputed {}\nedges {}\n",
        r.id,
        r.version,
        r.applied,
        r.classes.commuted,
        r.classes.repaired,
        r.classes.recomputed,
        r.edges,
    )
}

/// Encodes an `ok graph-get` metadata response.
pub fn encode_graph_meta(r: &GraphMeta) -> String {
    let cover = match r.cover_size {
        Some(n) => n.to_string(),
        None => "none".to_string(),
    };
    format!(
        "ok graph-get\nid {}\nvariant {}\nversion {}\nvertices {}\nedges {}\nseed {}\ncover-size {cover}\ndebt {}\ncommuted {}\nrepaired {}\nrecomputed {}\n",
        r.id,
        r.kind,
        r.version,
        r.vertices,
        r.edges,
        r.seed,
        r.debt,
        r.classes.commuted,
        r.classes.repaired,
        r.classes.recomputed,
    )
}

/// Encodes an `ok graph-spanner` response: the header, then one `u v`
/// line per spanner edge. Deterministic for a given delta history.
pub fn encode_graph_spanner_response(r: &GraphSpannerResult) -> String {
    let mut out = format!(
        "ok graph-spanner\nid {}\nversion {}\nkey {:016x}\nvariant {}\nconverged {}\niterations {}\nlocal-rounds {}\nstar-fallbacks {}\nspanner-size {}\nspanner\n",
        r.id,
        r.version,
        r.key,
        r.kind,
        u8::from(r.converged),
        r.iterations,
        r.local_rounds,
        r.star_fallbacks,
        r.edges.len(),
    );
    for &(u, v) in &r.edges {
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

/// Encodes an `ok graph-delete` response.
pub fn encode_graph_deleted(id: &str) -> String {
    format!("ok graph-delete\nid {id}\n")
}

/// Decodes a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, JobError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| JobError::Protocol("response is not UTF-8".into()))?;
    let (head, body) = text.split_once('\n').unwrap_or((text, ""));
    let head = head.trim_end();
    if let Some(message) = head.strip_prefix("err ") {
        return Ok(Response::Error(message.to_string()));
    }
    if let Some(ms) = head.strip_prefix("busy ") {
        let retry_after_ms = parse_u64(ms.trim(), "busy retry hint")?;
        return Ok(Response::Busy { retry_after_ms });
    }
    match head {
        "ok ping" => Ok(Response::Pong),
        "ok stats" => Ok(Response::Stats(body.trim_end().to_string())),
        "ok run" => decode_run_response(body),
        "ok hello" => decode_hello_response(body),
        "ok graph-create" => decode_graph_created(body),
        "ok graph-patch" => decode_graph_patched(body),
        "ok graph-get" => decode_graph_meta(body),
        "ok graph-spanner" => decode_graph_spanner(body),
        "ok graph-delete" => {
            let id = decode_id_line(body.lines().next().unwrap_or(""))?;
            Ok(Response::GraphDeleted { id })
        }
        other => Err(JobError::Protocol(format!(
            "unknown response head `{other}`"
        ))),
    }
}

fn decode_hello_response(body: &str) -> Result<Response, JobError> {
    let mut proto = None;
    let mut features = None;
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (k, v) = line.split_once(' ').unwrap_or((line, ""));
        match k {
            "proto" => proto = Some(parse_u64(v.trim(), "hello proto")?),
            "features" => {
                features = Some(v.split_whitespace().map(str::to_string).collect::<Vec<_>>())
            }
            other => return Err(JobError::Protocol(format!("unknown field `{other}`"))),
        }
    }
    Ok(Response::Hello {
        proto: proto.ok_or_else(|| JobError::Protocol("missing `proto` field".into()))?,
        features: features.unwrap_or_default(),
    })
}

/// Collects `key value` body lines into a map, erroring on repeats.
fn decode_kv_body(body: &str) -> Result<std::collections::HashMap<String, String>, JobError> {
    let mut fields = std::collections::HashMap::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (k, v) = line.split_once(' ').unwrap_or((line, ""));
        if fields.insert(k.to_string(), v.trim().to_string()).is_some() {
            return Err(JobError::Protocol(format!("repeated field `{k}`")));
        }
    }
    Ok(fields)
}

fn take_field(
    fields: &mut std::collections::HashMap<String, String>,
    key: &str,
) -> Result<String, JobError> {
    fields
        .remove(key)
        .ok_or_else(|| JobError::Protocol(format!("missing `{key}` field")))
}

fn take_u64(
    fields: &mut std::collections::HashMap<String, String>,
    key: &str,
) -> Result<u64, JobError> {
    parse_u64(&take_field(fields, key)?, key)
}

fn take_classes(
    fields: &mut std::collections::HashMap<String, String>,
) -> Result<crate::graphs::DeltaClasses, JobError> {
    Ok(crate::graphs::DeltaClasses {
        commuted: take_u64(fields, "commuted")?,
        repaired: take_u64(fields, "repaired")?,
        recomputed: take_u64(fields, "recomputed")?,
    })
}

fn decode_graph_created(body: &str) -> Result<Response, JobError> {
    let mut f = decode_kv_body(body)?;
    Ok(Response::GraphCreated(GraphCreated {
        id: take_field(&mut f, "id")?,
        version: take_u64(&mut f, "version")?,
        edges: narrow_usize(take_u64(&mut f, "edges")?, "edges")?,
        spanner_size: narrow_usize(take_u64(&mut f, "spanner-size")?, "spanner-size")?,
        existed: parse_flag(&take_field(&mut f, "existed")?, "existed")?,
    }))
}

fn decode_graph_patched(body: &str) -> Result<Response, JobError> {
    let mut f = decode_kv_body(body)?;
    Ok(Response::GraphPatched(GraphPatched {
        id: take_field(&mut f, "id")?,
        version: take_u64(&mut f, "version")?,
        applied: narrow_usize(take_u64(&mut f, "applied")?, "applied")?,
        classes: take_classes(&mut f)?,
        edges: narrow_usize(take_u64(&mut f, "edges")?, "edges")?,
    }))
}

fn decode_graph_meta(body: &str) -> Result<Response, JobError> {
    let mut f = decode_kv_body(body)?;
    let cover = take_field(&mut f, "cover-size")?;
    let cover_size = if cover == "none" {
        None
    } else {
        Some(narrow_usize(
            parse_u64(&cover, "cover-size")?,
            "cover-size",
        )?)
    };
    Ok(Response::GraphMeta(GraphMeta {
        id: take_field(&mut f, "id")?,
        kind: take_field(&mut f, "variant")?
            .parse::<VariantKind>()
            .map_err(JobError::Protocol)?,
        version: take_u64(&mut f, "version")?,
        vertices: narrow_usize(take_u64(&mut f, "vertices")?, "vertices")?,
        edges: narrow_usize(take_u64(&mut f, "edges")?, "edges")?,
        seed: take_u64(&mut f, "seed")?,
        cover_size,
        debt: narrow_usize(take_u64(&mut f, "debt")?, "debt")?,
        classes: take_classes(&mut f)?,
    }))
}

fn decode_graph_spanner(body: &str) -> Result<Response, JobError> {
    // The header is `key value` lines up to the bare `spanner` line;
    // everything after is `u v` edge lines.
    let (header, edge_lines) = body.split_once("\nspanner\n").ok_or_else(|| {
        JobError::Protocol("missing `spanner` section in graph-spanner response".into())
    })?;
    let mut f = decode_kv_body(header)?;
    let size = narrow_usize(take_u64(&mut f, "spanner-size")?, "spanner-size")?;
    let mut edges = Vec::with_capacity(size);
    for line in edge_lines.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (u, v) = line
            .split_once(' ')
            .ok_or_else(|| JobError::Protocol(format!("malformed spanner edge `{line}`")))?;
        edges.push((
            narrow_usize(
                parse_u64(u.trim(), "spanner edge endpoint")?,
                "spanner edge endpoint",
            )?,
            narrow_usize(
                parse_u64(v.trim(), "spanner edge endpoint")?,
                "spanner edge endpoint",
            )?,
        ));
    }
    if edges.len() != size {
        return Err(JobError::Protocol(format!(
            "spanner-size {size} does not match {} listed edges",
            edges.len()
        )));
    }
    Ok(Response::GraphSpanner(GraphSpannerResult {
        id: take_field(&mut f, "id")?,
        version: take_u64(&mut f, "version")?,
        key: u64::from_str_radix(&take_field(&mut f, "key")?, 16)
            .map_err(|_| JobError::Protocol("invalid key".into()))?,
        kind: take_field(&mut f, "variant")?
            .parse::<VariantKind>()
            .map_err(JobError::Protocol)?,
        converged: parse_flag(&take_field(&mut f, "converged")?, "converged")?,
        iterations: take_u64(&mut f, "iterations")?,
        local_rounds: take_u64(&mut f, "local-rounds")?,
        star_fallbacks: take_u64(&mut f, "star-fallbacks")?,
        edges,
    }))
}

fn decode_run_response(body: &str) -> Result<Response, JobError> {
    let mut key = None;
    let mut kind = None;
    let mut converged = None;
    let mut iterations = None;
    let mut local_rounds = None;
    let mut star_fallbacks = None;
    let mut spanner_size = None;
    let mut spanner = None;
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (k, v) = match line.split_once(' ') {
            Some(pair) => pair,
            // `spanner ` with an empty id list splits to a bare key.
            None if line == "spanner" => ("spanner", ""),
            None => {
                return Err(JobError::Protocol(format!(
                    "malformed response line `{line}`"
                )))
            }
        };
        let v = v.trim();
        match k {
            "key" => {
                key = Some(
                    u64::from_str_radix(v, 16)
                        .map_err(|_| JobError::Protocol(format!("invalid key `{v}`")))?,
                )
            }
            "variant" => kind = Some(v.parse::<VariantKind>().map_err(JobError::Protocol)?),
            "converged" => converged = Some(parse_flag(v, "converged")?),
            "iterations" => iterations = Some(parse_u64(v, "iterations")?),
            "local-rounds" => local_rounds = Some(parse_u64(v, "local-rounds")?),
            "star-fallbacks" => star_fallbacks = Some(parse_u64(v, "star-fallbacks")?),
            "spanner-size" => {
                spanner_size = Some(narrow_usize(parse_u64(v, "spanner-size")?, "spanner-size")?)
            }
            "spanner" => {
                spanner = Some(
                    v.split_whitespace()
                        .map(|f| {
                            parse_u64(f, "spanner id").and_then(|x| narrow_usize(x, "spanner id"))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
            other => return Err(JobError::Protocol(format!("unknown field `{other}`"))),
        }
    }
    let missing = |what: &str| JobError::Protocol(format!("missing `{what}` field"));
    let spanner = spanner.ok_or_else(|| missing("spanner"))?;
    let size = spanner_size.ok_or_else(|| missing("spanner-size"))?;
    if spanner.len() != size {
        return Err(JobError::Protocol(format!(
            "spanner-size {size} does not match {} listed ids",
            spanner.len()
        )));
    }
    Ok(Response::Run(JobResponse {
        key: key.ok_or_else(|| missing("key"))?,
        kind: kind.ok_or_else(|| missing("variant"))?,
        spanner,
        iterations: iterations.ok_or_else(|| missing("iterations"))?,
        local_rounds: local_rounds.ok_or_else(|| missing("local-rounds"))?,
        converged: converged.ok_or_else(|| missing("converged"))?,
        star_fallbacks: star_fallbacks.ok_or_else(|| missing("star-fallbacks"))?,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_graphs::{EdgeWeights, Graph};

    fn roundtrip_spec(spec: &JobSpec) -> JobSpec {
        let encoded = encode_request(spec);
        match decode_request(encoded.as_bytes()).unwrap() {
            Request::Run(spec) => *spec,
            other => panic!("expected run request, got {other:?}"),
        }
    }

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn run_request_roundtrips_all_variants() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 2)]);
        let d = dsa_graphs::DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let specs = [
            JobSpec::new(VariantInstance::Undirected { graph: g.clone() }, 3),
            JobSpec::new(VariantInstance::Directed { graph: d }, 4),
            JobSpec::new(
                VariantInstance::Weighted {
                    graph: g.clone(),
                    weights: EdgeWeights::from_vec(vec![2, 0, 5, 7]),
                },
                5,
            ),
            JobSpec::new(
                VariantInstance::ClientServer {
                    graph: g.clone(),
                    clients: EdgeSet::from_iter(4, [0, 1, 3]),
                    servers: EdgeSet::from_iter(4, [1, 2, 3]),
                },
                6,
            ),
        ];
        for spec in &specs {
            let back = roundtrip_spec(spec);
            assert_eq!(back.instance.kind(), spec.instance.kind());
            assert_eq!(back.config.seed, spec.config.seed);
            // The canonical keys agree, which is the identity the
            // service cares about.
            assert_eq!(
                crate::job::canonicalize_job(&back).unwrap().key,
                crate::job::canonicalize_job(spec).unwrap().key,
            );
        }
    }

    #[test]
    fn run_request_carries_config_and_timeout() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let mut spec = JobSpec::new(VariantInstance::Undirected { graph: g }, 9);
        spec.config.accept_denominator = 16;
        spec.config.monotone_stars = false;
        spec.config.round_densities = false;
        spec.config.max_iterations = 12_345;
        spec.config.num_shards = 4;
        spec.timeout = Some(Duration::from_millis(1500));
        let back = roundtrip_spec(&spec);
        assert_eq!(back.config.accept_denominator, 16);
        assert!(!back.config.monotone_stars);
        assert!(!back.config.round_densities);
        assert_eq!(back.config.max_iterations, 12_345);
        assert_eq!(back.config.num_shards, 4);
        assert_eq!(back.timeout, Some(Duration::from_millis(1500)));
    }

    #[test]
    fn shards_header_is_optional_and_roundtrips_auto() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        // Default (1) is omitted from the encoding and decodes back.
        let spec = JobSpec::new(VariantInstance::Undirected { graph: g.clone() }, 1);
        assert!(!encode_request(&spec).contains("shards"));
        assert_eq!(roundtrip_spec(&spec).config.num_shards, 1);
        // Explicit 0 ("one shard per core") survives the roundtrip.
        let mut auto = spec.clone();
        auto.config.num_shards = 0;
        assert!(encode_request(&auto).contains("shards 0\n"));
        assert_eq!(roundtrip_spec(&auto).config.num_shards, 0);
    }

    #[test]
    fn absurd_shard_counts_are_capped_at_decode() {
        // A hostile `shards 2^63` must not truncate through `as usize`
        // on 32-bit targets; it is capped (the engine clamps further).
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let mut spec = JobSpec::new(VariantInstance::Undirected { graph: g }, 1);
        spec.config.num_shards = usize::MAX;
        let back = roundtrip_spec(&spec);
        assert_eq!(back.config.num_shards as u64, MAX_SHARDS);
        let explicit =
            "run v1\nvariant undirected\nseed 1\nshards 9223372036854775808\ngraph\n# n 3\n0 1\n1 2\n";
        match decode_request(explicit.as_bytes()).unwrap() {
            Request::Run(spec) => assert_eq!(spec.config.num_shards as u64, MAX_SHARDS),
            other => panic!("expected run request, got {other:?}"),
        }
        // Everything at or below the cap passes through untouched.
        assert_eq!(decode_shards(0), 0);
        assert_eq!(decode_shards(8), 8);
        assert_eq!(decode_shards(MAX_SHARDS), MAX_SHARDS as usize);
    }

    #[test]
    fn pathological_timeouts_saturate_not_wrap() {
        // Duration::MAX.as_millis() far exceeds u64; the encoder must
        // saturate (previously the HTTP encoder wrapped via `as u64`
        // and the wire encoder emitted an unparseable u128).
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let mut spec = JobSpec::new(VariantInstance::Undirected { graph: g }, 1);
        spec.timeout = Some(Duration::MAX);
        let encoded = encode_request(&spec);
        assert!(
            encoded.contains(&format!("timeout-ms {}\n", u64::MAX)),
            "expected saturated timeout in {encoded:?}"
        );
        let back = roundtrip_spec(&spec);
        assert_eq!(back.timeout, Some(Duration::from_millis(u64::MAX)));
        // And the saturated form is a fixed point of the roundtrip.
        assert_eq!(roundtrip_spec(&back).timeout, back.timeout);
    }

    #[test]
    fn run_response_roundtrips() {
        let resp = JobResponse {
            key: 0xdead_beef_0123_4567,
            kind: VariantKind::ClientServer,
            spanner: vec![0, 3, 9],
            iterations: 7,
            local_rounds: 49,
            converged: true,
            star_fallbacks: 0,
        };
        let encoded = encode_run_response(&resp);
        match decode_response(encoded.as_bytes()).unwrap() {
            Response::Run(back) => assert_eq!(back, resp),
            other => panic!("expected run response, got {other:?}"),
        }
        // Empty spanners survive too.
        let empty = JobResponse {
            spanner: vec![],
            ..resp
        };
        match decode_response(encode_run_response(&empty).as_bytes()).unwrap() {
            Response::Run(back) => assert_eq!(back, empty),
            other => panic!("expected run response, got {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_error_cleanly() {
        for bad in [
            "bogus v1\n",
            "run v1\nseed 1\ngraph\n# n 2\n0 1\n", // missing variant
            "run v1\nvariant undirected\ngraph\n# n 2\n0 1\n", // missing seed
            "run v1\nvariant undirected\nseed 1\n", // missing graph
            "run v1\nvariant undirected\nseed 1\ngraph\n0 1\n", // headerless graph
            "run v1\nvariant weighted\nseed 1\ngraph\n# n 2\n0 1\n", // weights missing
            "run v1\nvariant client-server\nseed 1\nclients 9\nservers 0\ngraph\n# n 2\n0 1\n",
        ] {
            assert!(
                matches!(decode_request(bad.as_bytes()), Err(JobError::Protocol(_))),
                "accepted: {bad:?}"
            );
        }
    }

    #[test]
    fn absurd_vertex_counts_are_rejected_before_allocation() {
        let bad = "run v1\nvariant undirected\nseed 1\ngraph\n# n 9999999999999\n0 1\n";
        match decode_request(bad.as_bytes()) {
            Err(JobError::Protocol(m)) => assert!(m.contains("vertex count"), "{m}"),
            other => panic!("accepted absurd n: {other:?}"),
        }
        // A realistic header passes, including sparse graphs over a
        // large id space (isolated vertices up to the allowance).
        let ok = "run v1\nvariant undirected\nseed 1\ngraph\n# n 500\n0 1\n";
        assert!(decode_request(ok.as_bytes()).is_ok());
        let sparse = format!(
            "run v1\nvariant undirected\nseed 1\ngraph\n# n {}\n0 1\n",
            MIN_VERTEX_ALLOWANCE
        );
        assert!(decode_request(sparse.as_bytes()).is_ok());
    }

    #[test]
    fn busy_responses_roundtrip() {
        let enc = encode_busy_response(1_250);
        match decode_response(enc.as_bytes()).unwrap() {
            Response::Busy { retry_after_ms } => assert_eq!(retry_after_ms, 1_250),
            other => panic!("expected busy, got {other:?}"),
        }
        // A garbled hint is a protocol error, not a panic.
        assert!(matches!(
            decode_response(b"busy soon\n"),
            Err(JobError::Protocol(_))
        ));
    }

    #[test]
    fn hello_handshake_roundtrips() {
        match decode_request(encode_hello_request(2).as_bytes()).unwrap() {
            Request::Hello { proto } => assert_eq!(proto, 2),
            other => panic!("expected hello, got {other:?}"),
        }
        // Future clients may announce higher versions; v0 is nonsense.
        assert!(matches!(
            decode_request(b"hello v17\n"),
            Ok(Request::Hello { proto: 17 })
        ));
        assert!(matches!(
            decode_request(b"hello v0\n"),
            Err(JobError::Protocol(_))
        ));
        let enc = encode_hello_response(PROTO_VERSION, &["graphs"]);
        match decode_response(enc.as_bytes()).unwrap() {
            Response::Hello { proto, features } => {
                assert_eq!(proto, PROTO_VERSION);
                assert_eq!(features, vec!["graphs".to_string()]);
            }
            other => panic!("expected hello, got {other:?}"),
        }
        // A v1-style empty feature list survives too.
        match decode_response(encode_hello_response(1, &[]).as_bytes()).unwrap() {
            Response::Hello { proto, features } => {
                assert_eq!(proto, 1);
                assert!(features.is_empty());
            }
            other => panic!("expected hello, got {other:?}"),
        }
    }

    #[test]
    fn graph_create_roundtrips_and_shares_run_normalization() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let spec = GraphSpec {
            id: "prod.web-1".to_string(),
            instance: VariantInstance::Undirected { graph: g },
            config: EngineConfig::seeded(9),
        };
        let enc = encode_graph_create(&spec);
        assert!(enc.starts_with("graph-create v2\nid prod.web-1\nvariant undirected\n"));
        match decode_request(enc.as_bytes()).unwrap() {
            Request::GraphCreate(back) => {
                assert_eq!(back.id, spec.id);
                assert_eq!(back.instance, spec.instance);
                assert_eq!(back.config.seed, 9);
            }
            other => panic!("expected graph-create, got {other:?}"),
        }
        // Execution policy is stripped at encode and rejected at
        // decode; the vertex-count bound applies as for `run v1`.
        let mut wide = spec.clone();
        wide.config.num_shards = 8;
        assert!(!encode_graph_create(&wide).contains("shards"));
        for bad in [
            "graph-create v2\nid g\nvariant undirected\nseed 1\nshards 4\ngraph\n# n 2\n0 1\n",
            "graph-create v2\nid g\nvariant undirected\nseed 1\ntimeout-ms 5\ngraph\n# n 2\n0 1\n",
            "graph-create v2\nid bad/id\nvariant undirected\nseed 1\ngraph\n# n 2\n0 1\n",
            "graph-create v2\nid g\nvariant undirected\nseed 1\ngraph\n# n 9999999999999\n0 1\n",
        ] {
            assert!(
                matches!(decode_request(bad.as_bytes()), Err(JobError::Protocol(_))),
                "accepted: {bad:?}"
            );
        }
    }

    #[test]
    fn graph_patch_roundtrips_all_op_shapes() {
        let ops = vec![
            DeltaOp::Insert {
                u: 0,
                v: 1,
                weight: None,
                role: None,
            },
            DeltaOp::Insert {
                u: 1,
                v: 2,
                weight: Some(9),
                role: None,
            },
            DeltaOp::Insert {
                u: 2,
                v: 3,
                weight: None,
                role: Some(EdgeRole::Server),
            },
            DeltaOp::Delete { u: 0, v: 1 },
        ];
        let enc = encode_graph_patch("g", &ops);
        assert_eq!(
            enc,
            "graph-patch v2\nid g\nops\n+ 0 1\n+ 1 2 9\n+ 2 3 server\n- 0 1\n"
        );
        match decode_request(enc.as_bytes()).unwrap() {
            Request::GraphPatch { id, ops: back } => {
                assert_eq!(id, "g");
                assert_eq!(back, ops);
            }
            other => panic!("expected graph-patch, got {other:?}"),
        }
        for bad in [
            "graph-patch v2\nid g\nops\n* 0 1\n",
            "graph-patch v2\nid g\nops\n+ 0\n",
            "graph-patch v2\nid g\nops\n+ 0 1 maybe\n",
            "graph-patch v2\nid g\nops\n- 0 1 2\n",
            "graph-patch v2\nid g\n+ 0 1\n",
        ] {
            assert!(
                matches!(decode_request(bad.as_bytes()), Err(JobError::Protocol(_))),
                "accepted: {bad:?}"
            );
        }
    }

    #[test]
    fn graph_reads_and_delete_roundtrip() {
        match decode_request(encode_graph_get("a.b").as_bytes()).unwrap() {
            Request::GraphGet { id } => assert_eq!(id, "a.b"),
            other => panic!("expected graph-get, got {other:?}"),
        }
        match decode_request(encode_graph_spanner_request("a.b").as_bytes()).unwrap() {
            Request::GraphSpanner { id } => assert_eq!(id, "a.b"),
            other => panic!("expected graph-spanner, got {other:?}"),
        }
        match decode_request(encode_graph_delete("a.b").as_bytes()).unwrap() {
            Request::GraphDelete { id } => assert_eq!(id, "a.b"),
            other => panic!("expected graph-delete, got {other:?}"),
        }
    }

    #[test]
    fn graph_responses_roundtrip() {
        use crate::graphs::DeltaClasses;
        let created = GraphCreated {
            id: "g".into(),
            version: 3,
            edges: 17,
            spanner_size: 9,
            existed: true,
        };
        match decode_response(encode_graph_created(&created).as_bytes()).unwrap() {
            Response::GraphCreated(back) => assert_eq!(back, created),
            other => panic!("expected graph-created, got {other:?}"),
        }
        let patched = GraphPatched {
            id: "g".into(),
            version: 12,
            applied: 4,
            classes: DeltaClasses {
                commuted: 2,
                repaired: 1,
                recomputed: 1,
            },
            edges: 20,
        };
        match decode_response(encode_graph_patched(&patched).as_bytes()).unwrap() {
            Response::GraphPatched(back) => assert_eq!(back, patched),
            other => panic!("expected graph-patched, got {other:?}"),
        }
        for cover_size in [Some(7), None] {
            let meta = GraphMeta {
                id: "g".into(),
                kind: VariantKind::Weighted,
                version: 5,
                vertices: 40,
                edges: 21,
                seed: 8,
                cover_size,
                debt: 3,
                classes: DeltaClasses {
                    commuted: 9,
                    repaired: 3,
                    recomputed: 2,
                },
            };
            match decode_response(encode_graph_meta(&meta).as_bytes()).unwrap() {
                Response::GraphMeta(back) => assert_eq!(back, meta),
                other => panic!("expected graph-meta, got {other:?}"),
            }
        }
        for edges in [vec![(0, 1), (2, 3)], vec![]] {
            let spanner = GraphSpannerResult {
                id: "g".into(),
                version: 6,
                key: 0xabc_def,
                kind: VariantKind::Undirected,
                converged: true,
                iterations: 4,
                local_rounds: 28,
                star_fallbacks: 0,
                edges,
            };
            match decode_response(encode_graph_spanner_response(&spanner).as_bytes()).unwrap() {
                Response::GraphSpanner(back) => assert_eq!(back, spanner),
                other => panic!("expected graph-spanner, got {other:?}"),
            }
        }
        match decode_response(encode_graph_deleted("g").as_bytes()).unwrap() {
            Response::GraphDeleted { id } => assert_eq!(id, "g"),
            other => panic!("expected graph-deleted, got {other:?}"),
        }
    }

    #[test]
    fn error_responses_roundtrip() {
        let enc = encode_error_response("multi\nline gets flattened");
        match decode_response(enc.as_bytes()).unwrap() {
            Response::Error(m) => assert_eq!(m, "multi line gets flattened"),
            other => panic!("expected error, got {other:?}"),
        }
        match decode_response(encode_pong_response().as_bytes()).unwrap() {
            Response::Pong => {}
            other => panic!("expected pong, got {other:?}"),
        }
        match decode_response(encode_stats_response("{\"a\":1}").as_bytes()).unwrap() {
            Response::Stats(json) => assert_eq!(json, "{\"a\":1}"),
            other => panic!("expected stats, got {other:?}"),
        }
    }
}
