//! The length-prefixed request/response wire protocol of
//! `spanner-serve`.
//!
//! # Framing
//!
//! Every message is one *frame*: a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 text. Frames larger than
//! [`MAX_FRAME`] are rejected. A connection carries any number of
//! request frames, each answered by exactly one response frame, until
//! the client closes it.
//!
//! # Requests
//!
//! A request payload is a line-oriented header, one `key value` pair
//! per line, opened by a command line:
//!
//! ```text
//! run v1                  |  stats v1  |  ping v1
//! variant weighted
//! seed 42
//! accept-denominator 8    # optional, default 8
//! monotone 1              # optional, default 1
//! round-densities 1       # optional, default 1
//! max-iterations 1000000  # optional
//! shards 4                # optional, default 1; 0 = one per core;
//!                         # capped at MAX_SHARDS at decode time
//! timeout-ms 2000         # optional
//! clients 0 2 5           # client-server only
//! servers 1 3 4           # client-server only
//! graph                   # the rest is a dsa-graphs edge list
//! # n 5
//! 0 1 3
//! ...
//! ```
//!
//! The graph body is the [`dsa_graphs::io`] text format (weighted for
//! the `weighted` variant, directed for `directed`); `clients` /
//! `servers` list edge ids of the parsed (normalized) edge list.
//!
//! # Responses
//!
//! ```text
//! ok run                  |  ok stats        |  ok ping  |  err <message>  |  busy <retry-after-ms>
//! key 1f2e3d4c5b6a7988    |  {"jobs_...": 1}
//! variant weighted
//! converged 1
//! iterations 12
//! local-rounds 84
//! star-fallbacks 0
//! spanner-size 3
//! spanner 0 4 7
//! ```
//!
//! A `run` response is a pure function of the job spec — no timing, no
//! cached/coalesced flag — so a cache hit is byte-identical to the
//! cold computation of the same spec. `shards` requests parallel
//! in-engine execution; it cannot change the response bytes (the
//! engine is shard-count-deterministic), is not part of the job's
//! cache identity, and may be overridden by the server's `--shards`
//! flag.

use std::io::{Read, Write};
use std::time::Duration;

use dsa_core::dist::{EngineConfig, VariantInstance, VariantKind};
use dsa_graphs::{io as gio, EdgeSet};

use crate::job::{JobError, JobResponse, JobSpec};

/// Upper bound on a frame payload (64 MiB): a million-edge graph fits
/// with a wide margin, while a corrupt length prefix cannot trigger an
/// absurd allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Cap applied to a request's `shards` value at decode time (shared
/// with the HTTP facade). The engine already clamps its shard count to
/// `max(64, cores)` internally, so any value at or above that is "as
/// wide as the machine allows" — capping here preserves that meaning
/// (mirroring the `--shards` operator override, which feeds the same
/// clamp) while keeping a hostile `shards 2^63` from being truncated
/// by the `u64 -> usize` conversion on 32-bit targets. Shard count is
/// execution policy, never job identity, so the cap cannot change
/// response bytes.
pub const MAX_SHARDS: u64 = 1 << 16;

/// Decodes a wire/HTTP `shards` value: capped, then safely narrowed.
pub(crate) fn decode_shards(requested: u64) -> usize {
    requested.min(MAX_SHARDS) as usize
}

/// Writes one frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    assert!(payload.len() <= MAX_FRAME, "frame exceeds MAX_FRAME");
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on clean EOF before the first length
/// byte.
pub fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A decoded request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Run one spanner job (boxed: a spec carries a whole graph, far
    /// larger than the other variants).
    Run(Box<JobSpec>),
    /// Report the service metrics snapshot as JSON.
    Stats,
    /// Liveness probe.
    Ping,
}

/// A decoded response.
#[derive(Clone, Debug)]
pub enum Response {
    /// The job's result.
    Run(JobResponse),
    /// The metrics snapshot, as one JSON line.
    Stats(String),
    /// Answer to [`Request::Ping`].
    Pong,
    /// The server shed the request at admission (overload). The job
    /// was not started; retrying after the hinted delay is safe.
    Busy {
        /// Suggested client wait before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The server rejected or failed the request.
    Error(String),
}

fn parse_u64(value: &str, what: &str) -> Result<u64, JobError> {
    value
        .parse()
        .map_err(|_| JobError::Protocol(format!("invalid {what}: `{value}`")))
}

fn parse_flag(value: &str, what: &str) -> Result<bool, JobError> {
    match value {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(JobError::Protocol(format!(
            "invalid {what}: `{value}` (expected 0 or 1)"
        ))),
    }
}

/// Parses a whitespace-separated edge-id list into a set over
/// `0..universe`, rejecting out-of-range ids. Shared by the request
/// decoder and `spanner-cli` so the two never drift.
pub fn parse_id_list(value: &str, universe: usize, what: &str) -> Result<EdgeSet, JobError> {
    let mut set = EdgeSet::new(universe);
    for field in value.split_whitespace() {
        let id = parse_u64(field, what)? as usize;
        if id >= universe {
            return Err(JobError::Protocol(format!(
                "{what} id {id} out of range for {universe} edges"
            )));
        }
        set.insert(id);
    }
    Ok(set)
}

/// Encodes a job spec as a `run v1` request payload.
pub fn encode_request(spec: &JobSpec) -> String {
    let mut out = String::from("run v1\n");
    let kind = spec.instance.kind();
    out.push_str(&format!("variant {kind}\n"));
    out.push_str(&format!("seed {}\n", spec.config.seed));
    out.push_str(&format!(
        "accept-denominator {}\n",
        spec.config.accept_denominator
    ));
    out.push_str(&format!(
        "monotone {}\n",
        u8::from(spec.config.monotone_stars)
    ));
    out.push_str(&format!(
        "round-densities {}\n",
        u8::from(spec.config.round_densities)
    ));
    out.push_str(&format!("max-iterations {}\n", spec.config.max_iterations));
    if spec.config.num_shards != 1 {
        out.push_str(&format!("shards {}\n", spec.config.num_shards));
    }
    if let Some(t) = spec.timeout {
        // Saturating: `as_millis` is u128 and a pathological Duration
        // (Duration::MAX is ~5.8e14 years) must encode as "wait
        // practically forever", not wrap into a short deadline — and
        // the value must stay parseable by the u64 decoder.
        out.push_str(&format!("timeout-ms {}\n", saturating_millis(t)));
    }
    let graph_text = match &spec.instance {
        VariantInstance::Undirected { graph } => gio::to_edge_list(graph, None),
        VariantInstance::Weighted { graph, weights } => gio::to_edge_list(graph, Some(weights)),
        VariantInstance::Directed { graph } => gio::to_directed_edge_list(graph),
        VariantInstance::ClientServer {
            graph,
            clients,
            servers,
        } => {
            let ids = |s: &EdgeSet| {
                s.iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            out.push_str(&format!("clients {}\n", ids(clients)));
            out.push_str(&format!("servers {}\n", ids(servers)));
            gio::to_edge_list(graph, None)
        }
    };
    out.push_str("graph\n");
    out.push_str(&graph_text);
    out
}

/// A duration's millisecond count, saturated into `u64` (shared with
/// the HTTP facade's `timeout_ms` encoder).
pub(crate) fn saturating_millis(t: Duration) -> u64 {
    u64::try_from(t.as_millis()).unwrap_or(u64::MAX)
}

/// Encodes the `stats v1` request payload.
pub fn encode_stats_request() -> String {
    "stats v1\n".to_string()
}

/// Encodes the `ping v1` request payload.
pub fn encode_ping_request() -> String {
    "ping v1\n".to_string()
}

/// Decodes a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, JobError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| JobError::Protocol("request is not UTF-8".into()))?;
    let (head, rest) = text.split_once('\n').unwrap_or((text, ""));
    match head.trim_end() {
        "run v1" => decode_run_request(rest),
        "stats v1" => Ok(Request::Stats),
        "ping v1" => Ok(Request::Ping),
        other => Err(JobError::Protocol(format!(
            "unknown command `{other}` (expected `run v1`, `stats v1`, or `ping v1`)"
        ))),
    }
}

fn decode_run_request(body: &str) -> Result<Request, JobError> {
    let mut variant: Option<VariantKind> = None;
    let mut seed: Option<u64> = None;
    let mut accept_denominator: Option<u64> = None;
    let mut monotone: Option<bool> = None;
    let mut round_densities: Option<bool> = None;
    let mut max_iterations: Option<u64> = None;
    let mut shards: Option<usize> = None;
    let mut timeout: Option<Duration> = None;
    let mut clients_line: Option<String> = None;
    let mut servers_line: Option<String> = None;
    let mut graph_text: Option<&str> = None;

    let mut rest = body;
    while !rest.is_empty() {
        let (line, tail) = rest.split_once('\n').unwrap_or((rest, ""));
        let line_trimmed = line.trim();
        if line_trimmed == "graph" {
            graph_text = Some(tail);
            break;
        }
        rest = tail;
        if line_trimmed.is_empty() {
            continue;
        }
        // A bare key (e.g. `clients` with an empty id list) carries
        // an empty value.
        let (key, value) = line_trimmed.split_once(' ').unwrap_or((line_trimmed, ""));
        let value = value.trim();
        match key {
            "variant" => variant = Some(value.parse::<VariantKind>().map_err(JobError::Protocol)?),
            "seed" => seed = Some(parse_u64(value, "seed")?),
            "accept-denominator" => {
                accept_denominator = Some(parse_u64(value, "accept-denominator")?)
            }
            "monotone" => monotone = Some(parse_flag(value, "monotone")?),
            "round-densities" => round_densities = Some(parse_flag(value, "round-densities")?),
            "max-iterations" => max_iterations = Some(parse_u64(value, "max-iterations")?),
            "shards" => shards = Some(decode_shards(parse_u64(value, "shards")?)),
            "timeout-ms" => timeout = Some(Duration::from_millis(parse_u64(value, "timeout-ms")?)),
            "clients" => clients_line = Some(value.to_string()),
            "servers" => servers_line = Some(value.to_string()),
            other => return Err(JobError::Protocol(format!("unknown header `{other}`"))),
        }
    }

    let variant = variant.ok_or_else(|| JobError::Protocol("missing `variant` header".into()))?;
    let seed = seed.ok_or_else(|| JobError::Protocol("missing `seed` header".into()))?;
    let graph_text =
        graph_text.ok_or_else(|| JobError::Protocol("missing `graph` section".into()))?;
    check_declared_vertices(graph_text)?;

    let instance = match variant {
        VariantKind::Undirected => {
            let (graph, w) = gio::parse_edge_list(graph_text)
                .map_err(|e| JobError::Protocol(format!("bad graph: {e}")))?;
            if w.is_some() {
                return Err(JobError::Protocol(
                    "undirected variant takes an unweighted edge list".into(),
                ));
            }
            VariantInstance::Undirected { graph }
        }
        VariantKind::Weighted => {
            let (graph, w) = gio::parse_edge_list(graph_text)
                .map_err(|e| JobError::Protocol(format!("bad graph: {e}")))?;
            let weights = w.ok_or_else(|| {
                JobError::Protocol("weighted variant needs `u v w` edge lines".into())
            })?;
            VariantInstance::Weighted { graph, weights }
        }
        VariantKind::Directed => {
            let graph = gio::parse_directed_edge_list(graph_text)
                .map_err(|e| JobError::Protocol(format!("bad graph: {e}")))?;
            VariantInstance::Directed { graph }
        }
        VariantKind::ClientServer => {
            let (graph, w) = gio::parse_edge_list(graph_text)
                .map_err(|e| JobError::Protocol(format!("bad graph: {e}")))?;
            if w.is_some() {
                return Err(JobError::Protocol(
                    "client-server variant takes an unweighted edge list".into(),
                ));
            }
            let m = graph.num_edges();
            let clients = parse_id_list(
                &clients_line
                    .ok_or_else(|| JobError::Protocol("missing `clients` header".into()))?,
                m,
                "client",
            )?;
            let servers = parse_id_list(
                &servers_line
                    .ok_or_else(|| JobError::Protocol("missing `servers` header".into()))?,
                m,
                "server",
            )?;
            VariantInstance::ClientServer {
                graph,
                clients,
                servers,
            }
        }
    };

    let mut config = EngineConfig::seeded(seed);
    if let Some(d) = accept_denominator {
        if d == 0 {
            return Err(JobError::Protocol("accept-denominator must be >= 1".into()));
        }
        config.accept_denominator = d;
    }
    if let Some(m) = monotone {
        config.monotone_stars = m;
    }
    if let Some(r) = round_densities {
        config.round_densities = r;
    }
    if let Some(m) = max_iterations {
        config.max_iterations = m;
    }
    if let Some(s) = shards {
        config.num_shards = s;
    }

    Ok(Request::Run(Box::new(JobSpec {
        instance,
        config,
        timeout,
    })))
}

/// Vertex count every request may declare regardless of its size, so
/// sparse graphs over large id spaces (mostly isolated vertices) stay
/// servable over the wire.
pub const MIN_VERTEX_ALLOWANCE: u64 = 1 << 20;

/// Rejects a graph body whose `# n <count>` header declares more
/// vertices than the request can justify.
///
/// The frame cap bounds payload *bytes*, but `Graph::new(n)` allocates
/// per declared vertex, so without this check a ~60-byte frame could
/// demand gigabytes. The bound is `max(2 * body length + 1024,`
/// [`MIN_VERTEX_ALLOWANCE`]`)`: every non-isolated vertex occupies at
/// least one byte of some edge line, and the absolute allowance keeps
/// legitimate sparse graphs (big id space, few edges) inside the
/// protocol while capping a hostile header at ~megabytes of
/// allocation. The scan mirrors `dsa_graphs::io`'s header rule: the
/// first `# n <count>` comment wins.
fn check_declared_vertices(graph_text: &str) -> Result<(), JobError> {
    for line in graph_text.lines() {
        let Some(rest) = line.trim().strip_prefix('#') else {
            continue;
        };
        let fields: Vec<&str> = rest.split_whitespace().collect();
        if fields.len() != 2 || fields[0] != "n" {
            continue;
        }
        // Unparseable counts fall through to the io parser's error.
        if let Ok(n) = fields[1].parse::<u64>() {
            let limit = (2 * graph_text.len() as u64 + 1024).max(MIN_VERTEX_ALLOWANCE);
            if n > limit {
                return Err(JobError::Protocol(format!(
                    "declared vertex count {n} exceeds the request-size bound {limit}"
                )));
            }
        }
        return Ok(());
    }
    Ok(())
}

/// Encodes a job result as an `ok run` response payload.
///
/// Deterministic in the response: the serving path (cold, cached,
/// coalesced) leaves no trace in the bytes.
pub fn encode_run_response(resp: &JobResponse) -> String {
    let ids = resp
        .spanner
        .iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join(" ");
    format!(
        "ok run\nkey {:016x}\nvariant {}\nconverged {}\niterations {}\nlocal-rounds {}\nstar-fallbacks {}\nspanner-size {}\nspanner {}\n",
        resp.key,
        resp.kind,
        u8::from(resp.converged),
        resp.iterations,
        resp.local_rounds,
        resp.star_fallbacks,
        resp.spanner.len(),
        ids,
    )
}

/// Encodes a metrics snapshot as an `ok stats` response payload.
pub fn encode_stats_response(json: &str) -> String {
    format!("ok stats\n{json}\n")
}

/// Encodes the `ok ping` response payload.
pub fn encode_pong_response() -> String {
    "ok ping\n".to_string()
}

/// Encodes an error response payload.
pub fn encode_error_response(message: &str) -> String {
    // Keep the message single-line so the response stays parseable.
    format!("err {}\n", message.replace('\n', " "))
}

/// Encodes a `busy` response payload: the server shed the request at
/// admission and the client should retry after `retry_after_ms`.
pub fn encode_busy_response(retry_after_ms: u64) -> String {
    format!("busy {retry_after_ms}\n")
}

/// Decodes a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, JobError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| JobError::Protocol("response is not UTF-8".into()))?;
    let (head, body) = text.split_once('\n').unwrap_or((text, ""));
    let head = head.trim_end();
    if let Some(message) = head.strip_prefix("err ") {
        return Ok(Response::Error(message.to_string()));
    }
    if let Some(ms) = head.strip_prefix("busy ") {
        let retry_after_ms = parse_u64(ms.trim(), "busy retry hint")?;
        return Ok(Response::Busy { retry_after_ms });
    }
    match head {
        "ok ping" => Ok(Response::Pong),
        "ok stats" => Ok(Response::Stats(body.trim_end().to_string())),
        "ok run" => decode_run_response(body),
        other => Err(JobError::Protocol(format!(
            "unknown response head `{other}`"
        ))),
    }
}

fn decode_run_response(body: &str) -> Result<Response, JobError> {
    let mut key = None;
    let mut kind = None;
    let mut converged = None;
    let mut iterations = None;
    let mut local_rounds = None;
    let mut star_fallbacks = None;
    let mut spanner_size = None;
    let mut spanner = None;
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (k, v) = match line.split_once(' ') {
            Some(pair) => pair,
            // `spanner ` with an empty id list splits to a bare key.
            None if line == "spanner" => ("spanner", ""),
            None => {
                return Err(JobError::Protocol(format!(
                    "malformed response line `{line}`"
                )))
            }
        };
        let v = v.trim();
        match k {
            "key" => {
                key = Some(
                    u64::from_str_radix(v, 16)
                        .map_err(|_| JobError::Protocol(format!("invalid key `{v}`")))?,
                )
            }
            "variant" => kind = Some(v.parse::<VariantKind>().map_err(JobError::Protocol)?),
            "converged" => converged = Some(parse_flag(v, "converged")?),
            "iterations" => iterations = Some(parse_u64(v, "iterations")?),
            "local-rounds" => local_rounds = Some(parse_u64(v, "local-rounds")?),
            "star-fallbacks" => star_fallbacks = Some(parse_u64(v, "star-fallbacks")?),
            "spanner-size" => spanner_size = Some(parse_u64(v, "spanner-size")? as usize),
            "spanner" => {
                spanner = Some(
                    v.split_whitespace()
                        .map(|f| parse_u64(f, "spanner id").map(|x| x as usize))
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
            other => return Err(JobError::Protocol(format!("unknown field `{other}`"))),
        }
    }
    let missing = |what: &str| JobError::Protocol(format!("missing `{what}` field"));
    let spanner = spanner.ok_or_else(|| missing("spanner"))?;
    let size = spanner_size.ok_or_else(|| missing("spanner-size"))?;
    if spanner.len() != size {
        return Err(JobError::Protocol(format!(
            "spanner-size {size} does not match {} listed ids",
            spanner.len()
        )));
    }
    Ok(Response::Run(JobResponse {
        key: key.ok_or_else(|| missing("key"))?,
        kind: kind.ok_or_else(|| missing("variant"))?,
        spanner,
        iterations: iterations.ok_or_else(|| missing("iterations"))?,
        local_rounds: local_rounds.ok_or_else(|| missing("local-rounds"))?,
        converged: converged.ok_or_else(|| missing("converged"))?,
        star_fallbacks: star_fallbacks.ok_or_else(|| missing("star-fallbacks"))?,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_graphs::{EdgeWeights, Graph};

    fn roundtrip_spec(spec: &JobSpec) -> JobSpec {
        let encoded = encode_request(spec);
        match decode_request(encoded.as_bytes()).unwrap() {
            Request::Run(spec) => *spec,
            other => panic!("expected run request, got {other:?}"),
        }
    }

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn run_request_roundtrips_all_variants() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 2)]);
        let d = dsa_graphs::DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let specs = [
            JobSpec::new(VariantInstance::Undirected { graph: g.clone() }, 3),
            JobSpec::new(VariantInstance::Directed { graph: d }, 4),
            JobSpec::new(
                VariantInstance::Weighted {
                    graph: g.clone(),
                    weights: EdgeWeights::from_vec(vec![2, 0, 5, 7]),
                },
                5,
            ),
            JobSpec::new(
                VariantInstance::ClientServer {
                    graph: g.clone(),
                    clients: EdgeSet::from_iter(4, [0, 1, 3]),
                    servers: EdgeSet::from_iter(4, [1, 2, 3]),
                },
                6,
            ),
        ];
        for spec in &specs {
            let back = roundtrip_spec(spec);
            assert_eq!(back.instance.kind(), spec.instance.kind());
            assert_eq!(back.config.seed, spec.config.seed);
            // The canonical keys agree, which is the identity the
            // service cares about.
            assert_eq!(
                crate::job::canonicalize_job(&back).unwrap().key,
                crate::job::canonicalize_job(spec).unwrap().key,
            );
        }
    }

    #[test]
    fn run_request_carries_config_and_timeout() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let mut spec = JobSpec::new(VariantInstance::Undirected { graph: g }, 9);
        spec.config.accept_denominator = 16;
        spec.config.monotone_stars = false;
        spec.config.round_densities = false;
        spec.config.max_iterations = 12_345;
        spec.config.num_shards = 4;
        spec.timeout = Some(Duration::from_millis(1500));
        let back = roundtrip_spec(&spec);
        assert_eq!(back.config.accept_denominator, 16);
        assert!(!back.config.monotone_stars);
        assert!(!back.config.round_densities);
        assert_eq!(back.config.max_iterations, 12_345);
        assert_eq!(back.config.num_shards, 4);
        assert_eq!(back.timeout, Some(Duration::from_millis(1500)));
    }

    #[test]
    fn shards_header_is_optional_and_roundtrips_auto() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        // Default (1) is omitted from the encoding and decodes back.
        let spec = JobSpec::new(VariantInstance::Undirected { graph: g.clone() }, 1);
        assert!(!encode_request(&spec).contains("shards"));
        assert_eq!(roundtrip_spec(&spec).config.num_shards, 1);
        // Explicit 0 ("one shard per core") survives the roundtrip.
        let mut auto = spec.clone();
        auto.config.num_shards = 0;
        assert!(encode_request(&auto).contains("shards 0\n"));
        assert_eq!(roundtrip_spec(&auto).config.num_shards, 0);
    }

    #[test]
    fn absurd_shard_counts_are_capped_at_decode() {
        // A hostile `shards 2^63` must not truncate through `as usize`
        // on 32-bit targets; it is capped (the engine clamps further).
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let mut spec = JobSpec::new(VariantInstance::Undirected { graph: g }, 1);
        spec.config.num_shards = usize::MAX;
        let back = roundtrip_spec(&spec);
        assert_eq!(back.config.num_shards as u64, MAX_SHARDS);
        let explicit =
            "run v1\nvariant undirected\nseed 1\nshards 9223372036854775808\ngraph\n# n 3\n0 1\n1 2\n";
        match decode_request(explicit.as_bytes()).unwrap() {
            Request::Run(spec) => assert_eq!(spec.config.num_shards as u64, MAX_SHARDS),
            other => panic!("expected run request, got {other:?}"),
        }
        // Everything at or below the cap passes through untouched.
        assert_eq!(decode_shards(0), 0);
        assert_eq!(decode_shards(8), 8);
        assert_eq!(decode_shards(MAX_SHARDS), MAX_SHARDS as usize);
    }

    #[test]
    fn pathological_timeouts_saturate_not_wrap() {
        // Duration::MAX.as_millis() far exceeds u64; the encoder must
        // saturate (previously the HTTP encoder wrapped via `as u64`
        // and the wire encoder emitted an unparseable u128).
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let mut spec = JobSpec::new(VariantInstance::Undirected { graph: g }, 1);
        spec.timeout = Some(Duration::MAX);
        let encoded = encode_request(&spec);
        assert!(
            encoded.contains(&format!("timeout-ms {}\n", u64::MAX)),
            "expected saturated timeout in {encoded:?}"
        );
        let back = roundtrip_spec(&spec);
        assert_eq!(back.timeout, Some(Duration::from_millis(u64::MAX)));
        // And the saturated form is a fixed point of the roundtrip.
        assert_eq!(roundtrip_spec(&back).timeout, back.timeout);
    }

    #[test]
    fn run_response_roundtrips() {
        let resp = JobResponse {
            key: 0xdead_beef_0123_4567,
            kind: VariantKind::ClientServer,
            spanner: vec![0, 3, 9],
            iterations: 7,
            local_rounds: 49,
            converged: true,
            star_fallbacks: 0,
        };
        let encoded = encode_run_response(&resp);
        match decode_response(encoded.as_bytes()).unwrap() {
            Response::Run(back) => assert_eq!(back, resp),
            other => panic!("expected run response, got {other:?}"),
        }
        // Empty spanners survive too.
        let empty = JobResponse {
            spanner: vec![],
            ..resp
        };
        match decode_response(encode_run_response(&empty).as_bytes()).unwrap() {
            Response::Run(back) => assert_eq!(back, empty),
            other => panic!("expected run response, got {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_error_cleanly() {
        for bad in [
            "bogus v1\n",
            "run v1\nseed 1\ngraph\n# n 2\n0 1\n", // missing variant
            "run v1\nvariant undirected\ngraph\n# n 2\n0 1\n", // missing seed
            "run v1\nvariant undirected\nseed 1\n", // missing graph
            "run v1\nvariant undirected\nseed 1\ngraph\n0 1\n", // headerless graph
            "run v1\nvariant weighted\nseed 1\ngraph\n# n 2\n0 1\n", // weights missing
            "run v1\nvariant client-server\nseed 1\nclients 9\nservers 0\ngraph\n# n 2\n0 1\n",
        ] {
            assert!(
                matches!(decode_request(bad.as_bytes()), Err(JobError::Protocol(_))),
                "accepted: {bad:?}"
            );
        }
    }

    #[test]
    fn absurd_vertex_counts_are_rejected_before_allocation() {
        let bad = "run v1\nvariant undirected\nseed 1\ngraph\n# n 9999999999999\n0 1\n";
        match decode_request(bad.as_bytes()) {
            Err(JobError::Protocol(m)) => assert!(m.contains("vertex count"), "{m}"),
            other => panic!("accepted absurd n: {other:?}"),
        }
        // A realistic header passes, including sparse graphs over a
        // large id space (isolated vertices up to the allowance).
        let ok = "run v1\nvariant undirected\nseed 1\ngraph\n# n 500\n0 1\n";
        assert!(decode_request(ok.as_bytes()).is_ok());
        let sparse = format!(
            "run v1\nvariant undirected\nseed 1\ngraph\n# n {}\n0 1\n",
            MIN_VERTEX_ALLOWANCE
        );
        assert!(decode_request(sparse.as_bytes()).is_ok());
    }

    #[test]
    fn busy_responses_roundtrip() {
        let enc = encode_busy_response(1_250);
        match decode_response(enc.as_bytes()).unwrap() {
            Response::Busy { retry_after_ms } => assert_eq!(retry_after_ms, 1_250),
            other => panic!("expected busy, got {other:?}"),
        }
        // A garbled hint is a protocol error, not a panic.
        assert!(matches!(
            decode_response(b"busy soon\n"),
            Err(JobError::Protocol(_))
        ));
    }

    #[test]
    fn error_responses_roundtrip() {
        let enc = encode_error_response("multi\nline gets flattened");
        match decode_response(enc.as_bytes()).unwrap() {
            Response::Error(m) => assert_eq!(m, "multi line gets flattened"),
            other => panic!("expected error, got {other:?}"),
        }
        match decode_response(encode_pong_response().as_bytes()).unwrap() {
            Response::Pong => {}
            other => panic!("expected pong, got {other:?}"),
        }
        match decode_response(encode_stats_response("{\"a\":1}").as_bytes()).unwrap() {
            Response::Stats(json) => assert_eq!(json, "{\"a\":1}"),
            other => panic!("expected stats, got {other:?}"),
        }
    }
}
