//! Service-level accounting: throughput, latency percentiles, cache
//! effectiveness, and the engine work re-exported from each
//! [`dsa_core::dist::SpannerRun`].
//!
//! Counter semantics — every call to [`crate::Service::submit`] is
//! classified exactly once:
//!
//! * **cache hit** — served without an engine run, either from the
//!   in-memory LRU or from the persistent disk store (`disk_hits`
//!   counts the disk-served subset, so `disk_hits <= cache_hits`);
//! * **cache miss** — a fresh engine run was scheduled;
//! * **coalesced** — an identical job was already in flight, the
//!   submission joined it.
//!
//! So `submitted == cache_hits + cache_misses + coalesced` always —
//! and not just eventually: the submitted count and its class advance
//! *together* under one lock, and [`ServiceMetrics::snapshot`] reads
//! the four counters under the same lock, so the identity holds at
//! every observation point (the `/v1/metrics` HTTP endpoint and the
//! TCP `stats` command both serve such coherent snapshots). With
//! coalescing idle (no concurrent duplicates) the identity reads
//! `jobs == hits + misses`. Latency percentile math reuses
//! [`dsa_runtime::LatencyRecorder`] rather than duplicating it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dsa_runtime::LatencyRecorder;

/// The classification counters, advanced and snapshotted as one unit
/// so `submitted == cache_hits + cache_misses + coalesced` can never
/// be observed mid-update.
#[derive(Clone, Copy, Debug, Default)]
struct Classified {
    submitted: u64,
    cache_hits: u64,
    cache_misses: u64,
    coalesced: u64,
    /// Subset of `cache_hits` answered from the persistent store
    /// (advanced under the same lock so `disk_hits <= cache_hits` is
    /// also never observed mid-update).
    disk_hits: u64,
}

/// Interior-mutable counters shared by the service, its workers, and
/// the wire/HTTP frontends.
#[derive(Debug)]
pub(crate) struct ServiceMetrics {
    started: Instant,
    classified: Mutex<Classified>,
    completed: AtomicU64,
    skipped: AtomicU64,
    aborted: AtomicU64,
    cancelled: AtomicU64,
    timed_out: AtomicU64,
    invalid: AtomicU64,
    engine_iterations: AtomicU64,
    engine_local_rounds: AtomicU64,
    /// Gauge: distinct results currently in the persistent store (0
    /// when no store is configured). Set at open, advanced on append.
    store_records: AtomicU64,
    latency: Mutex<LatencyRecorder>,
}

/// Latency samples retained for percentile queries. Bounding the
/// window keeps a serve-until-killed daemon's memory and per-snapshot
/// cost independent of lifetime job count; 4096 recent engine runs is
/// plenty for stable p50/p95.
const LATENCY_WINDOW: usize = 4096;

impl ServiceMetrics {
    pub fn new() -> Self {
        ServiceMetrics {
            started: Instant::now(),
            classified: Mutex::new(Classified::default()),
            completed: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            invalid: AtomicU64::new(0),
            engine_iterations: AtomicU64::new(0),
            engine_local_rounds: AtomicU64::new(0),
            store_records: AtomicU64::new(0),
            latency: Mutex::new(LatencyRecorder::bounded(LATENCY_WINDOW)),
        }
    }

    /// Classifying a submission counts it: `submitted` and the class
    /// advance under one lock, so the `submitted == hits + misses +
    /// coalesced` identity holds at every instant a snapshot can
    /// observe.
    pub fn on_cache_hit(&self) {
        let mut c = self.classified.lock().expect("classified lock");
        c.submitted += 1;
        c.cache_hits += 1;
    }

    pub fn on_cache_miss(&self) {
        let mut c = self.classified.lock().expect("classified lock");
        c.submitted += 1;
        c.cache_misses += 1;
    }

    /// A disk hit is a cache hit (no engine run) that was answered
    /// from the persistent store: `submitted`, `cache_hits`, and
    /// `disk_hits` advance as one unit, so the classification
    /// invariant extends coherently (`disk_hits` is a subset counter,
    /// not a fourth class).
    pub fn on_disk_hit(&self) {
        let mut c = self.classified.lock().expect("classified lock");
        c.submitted += 1;
        c.cache_hits += 1;
        c.disk_hits += 1;
    }

    pub fn on_coalesced(&self) {
        let mut c = self.classified.lock().expect("classified lock");
        c.submitted += 1;
        c.coalesced += 1;
    }

    /// Updates the persistent-store size gauge (records currently
    /// servable from disk).
    pub fn set_store_records(&self, records: u64) {
        self.store_records.store(records, Ordering::Relaxed);
    }

    /// A response actually reached a waiting caller — the only place
    /// `jobs_completed` advances, so waiters that cancel or time out
    /// are never counted as answered.
    pub fn on_delivered(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_invalid(&self) {
        self.invalid.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_skipped(&self) {
        self.skipped.fetch_add(1, Ordering::Relaxed);
    }

    /// An engine run that had already started was abandoned mid-flight
    /// via the in-engine cancellation flag (every waiter cancelled).
    pub fn on_aborted(&self) {
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_executed(&self, iterations: u64, local_rounds: u64, latency: Duration) {
        self.engine_iterations
            .fetch_add(iterations, Ordering::Relaxed);
        self.engine_local_rounds
            .fetch_add(local_rounds, Ordering::Relaxed);
        self.latency
            .lock()
            .expect("latency lock")
            .record_micros(latency.as_micros() as u64);
    }

    /// A point-in-time view. The classification counters are copied
    /// under their shared lock, so `jobs_submitted == cache_hits +
    /// cache_misses + coalesced` holds in *every* snapshot, including
    /// ones taken while submissions race; the remaining counters are
    /// advisory (read individually).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let latency = self.latency.lock().expect("latency lock").clone();
        let c = *self.classified.lock().expect("classified lock");
        let completed = self.completed.load(Ordering::Relaxed);
        let uptime = self.started.elapsed();
        let classified = c.cache_hits + c.cache_misses;
        MetricsSnapshot {
            jobs_submitted: c.submitted,
            jobs_completed: completed,
            cache_hits: c.cache_hits,
            cache_misses: c.cache_misses,
            coalesced: c.coalesced,
            disk_hits: c.disk_hits,
            store_records: self.store_records.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            invalid: self.invalid.load(Ordering::Relaxed),
            cache_hit_rate: if classified == 0 {
                0.0
            } else {
                c.cache_hits as f64 / classified as f64
            },
            throughput_jobs_per_sec: if uptime.as_secs_f64() > 0.0 {
                completed as f64 / uptime.as_secs_f64()
            } else {
                0.0
            },
            p50_latency_us: latency.p50().unwrap_or(0),
            p95_latency_us: latency.p95().unwrap_or(0),
            mean_latency_us: latency.mean_micros(),
            engine_iterations: self.engine_iterations.load(Ordering::Relaxed),
            engine_local_rounds: self.engine_local_rounds.load(Ordering::Relaxed),
            uptime,
        }
    }
}

/// A point-in-time copy of the service counters, plus derived rates.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Jobs submitted (accepted specs; invalid ones don't count).
    pub jobs_submitted: u64,
    /// Responses actually delivered to waiting callers. Waiters that
    /// cancelled or timed out never count, so this can trail
    /// `jobs_submitted` even when every engine run finished.
    pub jobs_completed: u64,
    /// Submissions served straight from the result cache.
    pub cache_hits: u64,
    /// Submissions that scheduled a fresh engine run.
    pub cache_misses: u64,
    /// Submissions that joined an identical in-flight run.
    pub coalesced: u64,
    /// Subset of `cache_hits` served from the persistent disk store
    /// (verified against the canonical instance, then promoted into
    /// the in-memory LRU). Always 0 without a configured store.
    pub disk_hits: u64,
    /// Distinct results currently servable from the persistent store
    /// (a gauge, not a counter); 0 without a configured store.
    pub store_records: u64,
    /// Scheduled runs skipped because every waiter left (cancelled or
    /// timed out) before the run started.
    pub skipped: u64,
    /// Started engine runs abandoned mid-flight after every waiter
    /// cancelled (cooperative in-engine cancellation; nothing is
    /// cached).
    pub aborted: u64,
    /// Handle cancellations.
    pub cancelled: u64,
    /// Waits that hit their deadline.
    pub timed_out: u64,
    /// Specs rejected by validation.
    pub invalid: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 when nothing was
    /// classified yet.
    pub cache_hit_rate: f64,
    /// `jobs_completed / uptime`.
    pub throughput_jobs_per_sec: f64,
    /// Median engine-run latency over the most recent window (cache
    /// hits don't contribute).
    pub p50_latency_us: u64,
    /// 95th-percentile engine-run latency over the most recent window.
    pub p95_latency_us: u64,
    /// Mean engine-run latency over the most recent window.
    pub mean_latency_us: f64,
    /// Total engine iterations across executed runs.
    pub engine_iterations: u64,
    /// Total LOCAL rounds across executed runs
    /// ([`dsa_core::dist::SpannerRun::local_rounds`]).
    pub engine_local_rounds: u64,
    /// Time since the service started.
    pub uptime: Duration,
}

impl MetricsSnapshot {
    /// One-line JSON rendering (keys stable, no external dependency).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"jobs_submitted\":{},\"jobs_completed\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},\"coalesced\":{},",
                "\"disk_hits\":{},\"store_records\":{},",
                "\"skipped\":{},\"aborted\":{},\"cancelled\":{},\"timed_out\":{},\"invalid\":{},",
                "\"cache_hit_rate\":{:.6},\"throughput_jobs_per_sec\":{:.3},",
                "\"p50_latency_us\":{},\"p95_latency_us\":{},\"mean_latency_us\":{:.1},",
                "\"engine_iterations\":{},\"engine_local_rounds\":{},",
                "\"uptime_secs\":{:.3}}}"
            ),
            self.jobs_submitted,
            self.jobs_completed,
            self.cache_hits,
            self.cache_misses,
            self.coalesced,
            self.disk_hits,
            self.store_records,
            self.skipped,
            self.aborted,
            self.cancelled,
            self.timed_out,
            self.invalid,
            self.cache_hit_rate,
            self.throughput_jobs_per_sec,
            self.p50_latency_us,
            self.p95_latency_us,
            self.mean_latency_us,
            self.engine_iterations,
            self.engine_local_rounds,
            self.uptime.as_secs_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_up() {
        let m = ServiceMetrics::new();
        m.on_cache_miss();
        m.on_executed(10, 70, Duration::from_micros(1_000));
        m.on_cache_hit();
        m.on_disk_hit();
        m.on_coalesced();
        m.on_cache_miss();
        m.on_executed(6, 42, Duration::from_micros(3_000));
        m.set_store_records(2);
        // Four of the five waiters collected their response; the
        // fifth (say the coalesced one) timed out first.
        for _ in 0..4 {
            m.on_delivered();
        }
        m.on_timed_out();
        let s = m.snapshot();
        assert_eq!(s.jobs_submitted, 5);
        assert_eq!(
            s.jobs_submitted,
            s.cache_hits + s.cache_misses + s.coalesced,
            "a disk hit is a cache hit, not a fourth class"
        );
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.disk_hits, 1);
        assert_eq!(s.store_records, 2);
        assert_eq!(s.jobs_completed, 4);
        assert_eq!(s.timed_out, 1);
        assert_eq!(s.cache_hit_rate, 0.5);
        assert_eq!(s.engine_iterations, 16);
        assert_eq!(s.engine_local_rounds, 112);
        assert_eq!(s.p50_latency_us, 1_000);
        assert_eq!(s.p95_latency_us, 3_000);
    }

    #[test]
    fn snapshot_is_coherent_under_concurrent_classification() {
        // Regression test for the snapshot race: before classification
        // moved under one lock, a snapshot could land between the
        // submitted increment and the class increment and observe
        // `jobs != hits + misses + coalesced`. Hammer the three
        // classification paths from three threads while a reader
        // asserts the identity on every snapshot.
        let m = ServiceMetrics::new();
        std::thread::scope(|scope| {
            scope.spawn(|| (0..2_000).for_each(|_| m.on_cache_hit()));
            scope.spawn(|| (0..2_000).for_each(|_| m.on_cache_miss()));
            scope.spawn(|| (0..2_000).for_each(|_| m.on_coalesced()));
            scope.spawn(|| (0..2_000).for_each(|_| m.on_disk_hit()));
            for _ in 0..500 {
                let s = m.snapshot();
                assert_eq!(
                    s.jobs_submitted,
                    s.cache_hits + s.cache_misses + s.coalesced,
                    "snapshot observed a mid-update classification"
                );
                assert!(
                    s.disk_hits <= s.cache_hits,
                    "snapshot observed a mid-update disk hit"
                );
            }
        });
        let s = m.snapshot();
        assert_eq!(s.jobs_submitted, 8_000);
        assert_eq!(s.cache_hits + s.cache_misses + s.coalesced, 8_000);
        assert_eq!(s.disk_hits, 2_000);
    }

    #[test]
    fn json_snapshot_is_wellformed_enough() {
        let m = ServiceMetrics::new();
        let json = m.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cache_hit_rate\":0.000000"));
        assert!(json.contains("\"jobs_submitted\":0"));
    }
}
