//! Service-level accounting: throughput, latency percentiles, cache
//! effectiveness, and the engine work re-exported from each
//! [`dsa_core::dist::SpannerRun`].
//!
//! Counter semantics — every call to [`crate::Service::submit`] is
//! classified exactly once:
//!
//! * **cache hit** — served without an engine run, either from the
//!   in-memory LRU or from the persistent disk store (`disk_hits`
//!   counts the disk-served subset, so `disk_hits <= cache_hits`);
//! * **cache miss** — a fresh engine run was scheduled;
//! * **coalesced** — an identical job was already in flight, the
//!   submission joined it;
//! * **shed** — admission control rejected the job (queue depth or
//!   byte budget exhausted); the caller was told to retry later, no
//!   engine work was scheduled.
//!
//! So `submitted == cache_hits + cache_misses + coalesced + shed`
//! always — and not just eventually: the submitted count and its class
//! advance *together* under one lock, and [`ServiceMetrics::snapshot`]
//! reads the five counters under the same lock, so the identity holds
//! at every observation point (the `/v1/metrics` HTTP endpoint and the
//! TCP `stats` command both serve such coherent snapshots). With
//! coalescing and shedding idle the identity reads `jobs == hits +
//! misses`. Latency percentile math reuses
//! [`dsa_runtime::LatencyRecorder`] rather than duplicating it.

use dsa_runtime::sync::OrderedMutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use dsa_runtime::LatencyRecorder;

/// The classification counters, advanced and snapshotted as one unit
/// so `submitted == cache_hits + cache_misses + coalesced + shed` can
/// never be observed mid-update.
#[derive(Clone, Copy, Debug, Default)]
struct Classified {
    submitted: u64,
    cache_hits: u64,
    cache_misses: u64,
    coalesced: u64,
    shed: u64,
    /// Subset of `cache_hits` answered from the persistent store
    /// (advanced under the same lock so `disk_hits <= cache_hits` is
    /// also never observed mid-update).
    disk_hits: u64,
}

/// Interior-mutable counters shared by the service, its workers, and
/// the wire/HTTP frontends.
#[derive(Debug)]
pub(crate) struct ServiceMetrics {
    started: Instant,
    classified: OrderedMutex<Classified>,
    completed: AtomicU64,
    skipped: AtomicU64,
    aborted: AtomicU64,
    cancelled: AtomicU64,
    timed_out: AtomicU64,
    invalid: AtomicU64,
    engine_iterations: AtomicU64,
    engine_local_rounds: AtomicU64,
    /// Gauge: 1 once the persistent store has been demoted to
    /// memory-only after an append failure (ENOSPC, injected fault);
    /// the service keeps serving correct bytes, it just stops
    /// persisting. Never resets within a process lifetime.
    store_degraded: AtomicU64,
    /// Connections closed because a request or frame read exceeded its
    /// deadline (slow-loris defense).
    connections_timed_out: AtomicU64,
    /// Gauge: distinct results currently in the persistent store (0
    /// when no store is configured). Set at open, advanced on append.
    store_records: AtomicU64,
    /// Records dropped by corruption recovery when the store was
    /// opened (a counter per process lifetime; recovery happens once,
    /// at open).
    store_records_dropped: AtomicU64,
    /// Cumulative store I/O wall time, in microseconds.
    store_read_us: AtomicU64,
    store_write_us: AtomicU64,
    /// Wall time of the open-time recovery scan (log walk + warm
    /// decode), set once at open.
    store_recovery_us: AtomicU64,
    /// Gauge: named graphs currently registered (set at open from the
    /// replayed log, advanced on create/delete).
    graphs_live: AtomicU64,
    /// Graph PATCH ops by maintenance class: already covered (no
    /// work), locally repaired, or queued for full recompute.
    graph_deltas_commuted: AtomicU64,
    graph_deltas_repaired: AtomicU64,
    graph_deltas_recomputed: AtomicU64,
    latency: OrderedMutex<LatencyRecorder>,
    hist: OrderedMutex<Histogram>,
}

/// Upper bounds (µs) of the fixed engine-run latency buckets; the
/// overflow (`+Inf`) bucket is implicit. Fixed bounds make scraped
/// histograms comparable across processes and restarts, unlike the
/// sliding p50/p95 window next to them.
pub const LATENCY_BUCKETS_US: [u64; 8] = [100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000];

/// Cumulative-friendly fixed-bucket latency histogram. Kept behind its
/// own mutex: one bucket increment per executed run.
#[derive(Clone, Copy, Debug, Default)]
struct Histogram {
    /// Per-bucket (non-cumulative) counts; the last slot is `+Inf`.
    counts: [u64; LATENCY_BUCKETS_US.len() + 1],
    sum_us: u64,
    total: u64,
}

impl Histogram {
    fn record_micros(&mut self, us: u64) {
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.counts[idx] += 1;
        self.sum_us += us;
        self.total += 1;
    }
}

/// Latency samples retained for percentile queries. Bounding the
/// window keeps a serve-until-killed daemon's memory and per-snapshot
/// cost independent of lifetime job count; 4096 recent engine runs is
/// plenty for stable p50/p95.
const LATENCY_WINDOW: usize = 4096;

impl ServiceMetrics {
    pub fn new() -> Self {
        ServiceMetrics {
            started: Instant::now(),
            classified: OrderedMutex::new("metrics_classified", 90, Classified::default()),
            completed: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            invalid: AtomicU64::new(0),
            engine_iterations: AtomicU64::new(0),
            engine_local_rounds: AtomicU64::new(0),
            store_degraded: AtomicU64::new(0),
            connections_timed_out: AtomicU64::new(0),
            store_records: AtomicU64::new(0),
            store_records_dropped: AtomicU64::new(0),
            store_read_us: AtomicU64::new(0),
            store_write_us: AtomicU64::new(0),
            store_recovery_us: AtomicU64::new(0),
            graphs_live: AtomicU64::new(0),
            graph_deltas_commuted: AtomicU64::new(0),
            graph_deltas_repaired: AtomicU64::new(0),
            graph_deltas_recomputed: AtomicU64::new(0),
            latency: OrderedMutex::new(
                "metrics_latency",
                92,
                LatencyRecorder::bounded(LATENCY_WINDOW),
            ),
            hist: OrderedMutex::new("metrics_hist", 94, Histogram::default()),
        }
    }

    /// Classifying a submission counts it: `submitted` and the class
    /// advance under one lock, so the `submitted == hits + misses +
    /// coalesced` identity holds at every instant a snapshot can
    /// observe.
    pub fn on_cache_hit(&self) {
        let mut c = self.classified.lock();
        c.submitted += 1;
        c.cache_hits += 1;
    }

    pub fn on_cache_miss(&self) {
        let mut c = self.classified.lock();
        c.submitted += 1;
        c.cache_misses += 1;
    }

    /// A disk hit is a cache hit (no engine run) that was answered
    /// from the persistent store: `submitted`, `cache_hits`, and
    /// `disk_hits` advance as one unit, so the classification
    /// invariant extends coherently (`disk_hits` is a subset counter,
    /// not a fourth class).
    pub fn on_disk_hit(&self) {
        let mut c = self.classified.lock();
        c.submitted += 1;
        c.cache_hits += 1;
        c.disk_hits += 1;
    }

    pub fn on_coalesced(&self) {
        let mut c = self.classified.lock();
        c.submitted += 1;
        c.coalesced += 1;
    }

    /// Admission control rejected the job: it still counts as
    /// submitted (the caller's request was valid and classified), with
    /// class `shed`, so the classification identity extends to
    /// `submitted == hits + misses + coalesced + shed`.
    pub fn on_shed(&self) {
        let mut c = self.classified.lock();
        c.submitted += 1;
        c.shed += 1;
    }

    /// Marks the persistent store demoted to memory-only caching (an
    /// append failed; results are still correct, just not persisted).
    pub fn set_store_degraded(&self) {
        self.store_degraded.store(1, Ordering::Relaxed);
    }

    /// A connection was closed because a request/frame read exceeded
    /// its deadline (slow-loris defense).
    pub fn on_connection_timed_out(&self) {
        self.connections_timed_out.fetch_add(1, Ordering::Relaxed);
    }

    /// The current 95th-percentile engine-run latency in microseconds
    /// (0 with no samples yet) — the basis of `Retry-After` hints on
    /// shed jobs.
    pub fn p95_us(&self) -> u64 {
        self.latency.lock().p95().unwrap_or(0)
    }

    /// Updates the persistent-store size gauge (records currently
    /// servable from disk).
    pub fn set_store_records(&self, records: u64) {
        self.store_records.store(records, Ordering::Relaxed);
    }

    /// Records how many corrupt records open-time recovery dropped —
    /// previously only a startup log line, now a scrapeable counter so
    /// silent data loss shows up on dashboards.
    pub fn set_store_dropped(&self, dropped: u64) {
        self.store_records_dropped.store(dropped, Ordering::Relaxed);
    }

    /// Wall time of the store open (log recovery walk + warm decode).
    pub fn set_store_recovery(&self, elapsed: Duration) {
        self.store_recovery_us
            .store(elapsed.as_micros() as u64, Ordering::Relaxed);
    }

    /// Adds one store read (verified disk-hit lookup) to the
    /// cumulative read-time counter.
    pub fn on_store_read(&self, elapsed: Duration) {
        self.store_read_us
            .fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
    }

    /// Adds one store append to the cumulative write-time counter.
    pub fn on_store_write(&self, elapsed: Duration) {
        self.store_write_us
            .fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
    }

    /// Updates the live named-graph gauge (registered graphs that have
    /// not been deleted).
    pub fn set_graphs_live(&self, n: u64) {
        self.graphs_live.store(n, Ordering::Relaxed);
    }

    /// Adds one PATCH's worth of delta classifications: ops that
    /// commuted with the maintained cover, ops repaired locally, and
    /// ops that forced a full-recompute path.
    pub fn on_graph_deltas(&self, commuted: u64, repaired: u64, recomputed: u64) {
        self.graph_deltas_commuted
            .fetch_add(commuted, Ordering::Relaxed);
        self.graph_deltas_repaired
            .fetch_add(repaired, Ordering::Relaxed);
        self.graph_deltas_recomputed
            .fetch_add(recomputed, Ordering::Relaxed);
    }

    /// A response actually reached a waiting caller — the only place
    /// `jobs_completed` advances, so waiters that cancel or time out
    /// are never counted as answered.
    pub fn on_delivered(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_invalid(&self) {
        self.invalid.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_skipped(&self) {
        self.skipped.fetch_add(1, Ordering::Relaxed);
    }

    /// An engine run that had already started was abandoned mid-flight
    /// via the in-engine cancellation flag (every waiter cancelled).
    pub fn on_aborted(&self) {
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_executed(&self, iterations: u64, local_rounds: u64, latency: Duration) {
        self.engine_iterations
            .fetch_add(iterations, Ordering::Relaxed);
        self.engine_local_rounds
            .fetch_add(local_rounds, Ordering::Relaxed);
        let us = latency.as_micros() as u64;
        self.latency.lock().record_micros(us);
        self.hist.lock().record_micros(us);
    }

    /// A point-in-time view. The classification counters are copied
    /// under their shared lock, so `jobs_submitted == cache_hits +
    /// cache_misses + coalesced` holds in *every* snapshot, including
    /// ones taken while submissions race; the remaining counters are
    /// advisory (read individually).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let latency = self.latency.lock().clone();
        let hist = *self.hist.lock();
        let c = *self.classified.lock();
        let completed = self.completed.load(Ordering::Relaxed);
        let uptime = self.started.elapsed();
        let classified = c.cache_hits + c.cache_misses;
        MetricsSnapshot {
            jobs_submitted: c.submitted,
            jobs_completed: completed,
            cache_hits: c.cache_hits,
            cache_misses: c.cache_misses,
            coalesced: c.coalesced,
            shed: c.shed,
            disk_hits: c.disk_hits,
            store_records: self.store_records.load(Ordering::Relaxed),
            store_degraded: self.store_degraded.load(Ordering::Relaxed),
            connections_timed_out: self.connections_timed_out.load(Ordering::Relaxed),
            store_records_dropped: self.store_records_dropped.load(Ordering::Relaxed),
            store_read_us: self.store_read_us.load(Ordering::Relaxed),
            store_write_us: self.store_write_us.load(Ordering::Relaxed),
            store_recovery_us: self.store_recovery_us.load(Ordering::Relaxed),
            graphs_live: self.graphs_live.load(Ordering::Relaxed),
            graph_deltas_commuted: self.graph_deltas_commuted.load(Ordering::Relaxed),
            graph_deltas_repaired: self.graph_deltas_repaired.load(Ordering::Relaxed),
            graph_deltas_recomputed: self.graph_deltas_recomputed.load(Ordering::Relaxed),
            // Gauges sampled by the owner of the queue/inflight state:
            // `Service::metrics` fills them in after this snapshot.
            queue_depth: 0,
            in_flight: 0,
            latency_bucket_counts: hist.counts,
            latency_hist_sum_us: hist.sum_us,
            latency_hist_count: hist.total,
            skipped: self.skipped.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            invalid: self.invalid.load(Ordering::Relaxed),
            cache_hit_rate: if classified == 0 {
                0.0
            } else {
                c.cache_hits as f64 / classified as f64
            },
            throughput_jobs_per_sec: if uptime.as_secs_f64() > 0.0 {
                completed as f64 / uptime.as_secs_f64()
            } else {
                0.0
            },
            p50_latency_us: latency.p50().unwrap_or(0),
            p95_latency_us: latency.p95().unwrap_or(0),
            mean_latency_us: latency.mean_micros(),
            engine_iterations: self.engine_iterations.load(Ordering::Relaxed),
            engine_local_rounds: self.engine_local_rounds.load(Ordering::Relaxed),
            uptime,
        }
    }
}

/// A point-in-time copy of the service counters, plus derived rates.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Jobs submitted (accepted specs; invalid ones don't count).
    pub jobs_submitted: u64,
    /// Responses actually delivered to waiting callers. Waiters that
    /// cancelled or timed out never count, so this can trail
    /// `jobs_submitted` even when every engine run finished.
    pub jobs_completed: u64,
    /// Submissions served straight from the result cache.
    pub cache_hits: u64,
    /// Submissions that scheduled a fresh engine run.
    pub cache_misses: u64,
    /// Submissions that joined an identical in-flight run.
    pub coalesced: u64,
    /// Submissions rejected by admission control (queue depth or byte
    /// budget exhausted); `jobs_submitted == cache_hits + cache_misses
    /// + coalesced + shed` in every snapshot.
    pub shed: u64,
    /// Subset of `cache_hits` served from the persistent disk store
    /// (verified against the canonical instance, then promoted into
    /// the in-memory LRU). Always 0 without a configured store.
    pub disk_hits: u64,
    /// Distinct results currently servable from the persistent store
    /// (a gauge, not a counter); 0 without a configured store.
    pub store_records: u64,
    /// Corrupt records dropped by the store's open-time recovery scan.
    /// Non-zero means the log was damaged and silently healed — the
    /// dashboards should see that, not just the startup stderr.
    pub store_records_dropped: u64,
    /// 1 once the persistent store was demoted to memory-only caching
    /// after an append failure; 0 while healthy (or with no store).
    pub store_degraded: u64,
    /// Connections closed because a request/frame read exceeded its
    /// deadline (slow-loris defense).
    pub connections_timed_out: u64,
    /// Cumulative wall time spent reading results from the store, µs.
    pub store_read_us: u64,
    /// Cumulative wall time spent appending results to the store, µs.
    pub store_write_us: u64,
    /// Wall time of the open-time recovery scan (log walk + warm
    /// decode), µs.
    pub store_recovery_us: u64,
    /// Named graphs currently registered (a gauge; created minus
    /// deleted, seeded from the replayed graph log at open).
    pub graphs_live: u64,
    /// Graph PATCH ops whose edges were already covered by the
    /// maintained spanner — classified with zero engine work.
    pub graph_deltas_commuted: u64,
    /// Graph PATCH ops absorbed by a local repair pass over the
    /// maintained cover.
    pub graph_deltas_repaired: u64,
    /// Graph PATCH ops that invalidated the cover (deletes, stale or
    /// debt-saturated covers) and deferred to a full recompute.
    pub graph_deltas_recomputed: u64,
    /// Jobs waiting in the worker-pool queue (a gauge sampled at
    /// snapshot time).
    pub queue_depth: u64,
    /// Jobs currently executing or awaiting pickup in the in-flight
    /// table (a gauge sampled at snapshot time).
    pub in_flight: u64,
    /// Engine-run latency counts per fixed bucket
    /// ([`LATENCY_BUCKETS_US`]); the last slot is the `+Inf` overflow.
    /// Non-cumulative; the Prometheus rendering accumulates.
    pub latency_bucket_counts: [u64; LATENCY_BUCKETS_US.len() + 1],
    /// Sum of all engine-run latencies ever recorded, µs (unlike the
    /// windowed mean, this never forgets).
    pub latency_hist_sum_us: u64,
    /// Engine runs recorded into the histogram.
    pub latency_hist_count: u64,
    /// Scheduled runs skipped because every waiter left (cancelled or
    /// timed out) before the run started.
    pub skipped: u64,
    /// Started engine runs abandoned mid-flight after every waiter
    /// cancelled (cooperative in-engine cancellation; nothing is
    /// cached).
    pub aborted: u64,
    /// Handle cancellations.
    pub cancelled: u64,
    /// Waits that hit their deadline.
    pub timed_out: u64,
    /// Specs rejected by validation.
    pub invalid: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 when nothing was
    /// classified yet.
    pub cache_hit_rate: f64,
    /// `jobs_completed / uptime`.
    pub throughput_jobs_per_sec: f64,
    /// Median engine-run latency over the most recent window (cache
    /// hits don't contribute).
    pub p50_latency_us: u64,
    /// 95th-percentile engine-run latency over the most recent window.
    pub p95_latency_us: u64,
    /// Mean engine-run latency over the most recent window.
    pub mean_latency_us: f64,
    /// Total engine iterations across executed runs.
    pub engine_iterations: u64,
    /// Total LOCAL rounds across executed runs
    /// ([`dsa_core::dist::SpannerRun::local_rounds`]).
    pub engine_local_rounds: u64,
    /// Time since the service started.
    pub uptime: Duration,
}

impl MetricsSnapshot {
    /// One-line JSON rendering (keys stable, no external dependency).
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .latency_bucket_counts
            .iter()
            .map(|c| c.to_string())
            .collect();
        format!(
            concat!(
                "{{\"jobs_submitted\":{},\"jobs_completed\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},\"coalesced\":{},\"jobs_shed\":{},",
                "\"disk_hits\":{},\"store_records\":{},\"store_records_dropped\":{},",
                "\"store_degraded\":{},\"connections_timed_out\":{},",
                "\"skipped\":{},\"aborted\":{},\"cancelled\":{},\"timed_out\":{},\"invalid\":{},",
                "\"cache_hit_rate\":{:.6},\"throughput_jobs_per_sec\":{:.3},",
                "\"p50_latency_us\":{},\"p95_latency_us\":{},\"mean_latency_us\":{:.1},",
                "\"latency_bucket_counts\":[{}],\"latency_hist_sum_us\":{},",
                "\"latency_hist_count\":{},",
                "\"queue_depth\":{},\"in_flight\":{},",
                "\"store_read_us\":{},\"store_write_us\":{},\"store_recovery_us\":{},",
                "\"graphs_live\":{},\"graph_deltas_commuted\":{},",
                "\"graph_deltas_repaired\":{},\"graph_deltas_recomputed\":{},",
                "\"engine_iterations\":{},\"engine_local_rounds\":{},",
                "\"uptime_secs\":{:.3}}}"
            ),
            self.jobs_submitted,
            self.jobs_completed,
            self.cache_hits,
            self.cache_misses,
            self.coalesced,
            self.shed,
            self.disk_hits,
            self.store_records,
            self.store_records_dropped,
            self.store_degraded,
            self.connections_timed_out,
            self.skipped,
            self.aborted,
            self.cancelled,
            self.timed_out,
            self.invalid,
            self.cache_hit_rate,
            self.throughput_jobs_per_sec,
            self.p50_latency_us,
            self.p95_latency_us,
            self.mean_latency_us,
            buckets.join(","),
            self.latency_hist_sum_us,
            self.latency_hist_count,
            self.queue_depth,
            self.in_flight,
            self.store_read_us,
            self.store_write_us,
            self.store_recovery_us,
            self.graphs_live,
            self.graph_deltas_commuted,
            self.graph_deltas_repaired,
            self.graph_deltas_recomputed,
            self.engine_iterations,
            self.engine_local_rounds,
            self.uptime.as_secs_f64(),
        )
    }

    /// Prometheus text exposition (format version 0.0.4).
    ///
    /// The rendering is a pure function of the snapshot — metric
    /// order, label order, and number formatting are all fixed — so a
    /// fixed metrics state always serializes to the same bytes
    /// (scrapers and the golden test both rely on that).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let mut metric = |name: &str, kind: &str, help: &str, samples: &[(String, String)]| {
            out.push_str("# HELP spanner_");
            out.push_str(name);
            out.push(' ');
            out.push_str(help);
            out.push_str("\n# TYPE spanner_");
            out.push_str(name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            for (labels, value) in samples {
                out.push_str("spanner_");
                out.push_str(name);
                out.push_str(labels);
                out.push(' ');
                out.push_str(value);
                out.push('\n');
            }
        };
        let plain = |v: u64| vec![(String::new(), v.to_string())];
        let secs6 = |us: u64| format!("{:.6}", us as f64 / 1e6);

        metric(
            "build_info",
            "gauge",
            "Constant 1, labeled with the serving crate and version.",
            &[(
                format!(
                    "{{crate=\"{}\",version=\"{}\"}}",
                    escape_label_value("dsa-service"),
                    escape_label_value(env!("CARGO_PKG_VERSION")),
                ),
                "1".to_string(),
            )],
        );
        metric(
            "jobs_total",
            "counter",
            "Jobs accepted by the service (invalid specs excluded).",
            &plain(self.jobs_submitted),
        );
        metric(
            "jobs_by_class_total",
            "counter",
            "Accepted jobs by cache classification; the classes sum to spanner_jobs_total.",
            &[
                (
                    "{class=\"cache_hit\"}".to_string(),
                    self.cache_hits.to_string(),
                ),
                (
                    "{class=\"cache_miss\"}".to_string(),
                    self.cache_misses.to_string(),
                ),
                (
                    "{class=\"coalesced\"}".to_string(),
                    self.coalesced.to_string(),
                ),
                ("{class=\"shed\"}".to_string(), self.shed.to_string()),
            ],
        );
        metric(
            "disk_hits_total",
            "counter",
            "Cache hits served from the persistent store (subset of class cache_hit).",
            &plain(self.disk_hits),
        );
        metric(
            "jobs_completed_total",
            "counter",
            "Responses delivered to waiting callers.",
            &plain(self.jobs_completed),
        );
        metric(
            "jobs_skipped_total",
            "counter",
            "Scheduled runs skipped because every waiter left first.",
            &plain(self.skipped),
        );
        metric(
            "jobs_aborted_total",
            "counter",
            "Started engine runs abandoned mid-flight after every waiter cancelled.",
            &plain(self.aborted),
        );
        metric(
            "jobs_cancelled_total",
            "counter",
            "Handle cancellations.",
            &plain(self.cancelled),
        );
        metric(
            "jobs_timed_out_total",
            "counter",
            "Waits that hit their deadline.",
            &plain(self.timed_out),
        );
        metric(
            "jobs_invalid_total",
            "counter",
            "Specs rejected by validation.",
            &plain(self.invalid),
        );
        metric(
            "cache_hit_ratio",
            "gauge",
            "cache_hits / (cache_hits + cache_misses).",
            &[(String::new(), format!("{:.6}", self.cache_hit_rate))],
        );
        metric(
            "queue_depth",
            "gauge",
            "Jobs waiting in the worker-pool queue.",
            &plain(self.queue_depth),
        );
        metric(
            "inflight_jobs",
            "gauge",
            "Jobs executing or awaiting pickup in the in-flight table.",
            &plain(self.in_flight),
        );
        metric(
            "connections_timed_out_total",
            "counter",
            "Connections closed because a request read exceeded its deadline.",
            &plain(self.connections_timed_out),
        );
        metric(
            "store_records",
            "gauge",
            "Distinct results currently servable from the persistent store.",
            &plain(self.store_records),
        );
        metric(
            "store_records_dropped_total",
            "counter",
            "Corrupt records dropped by the store's open-time recovery.",
            &plain(self.store_records_dropped),
        );
        metric(
            "store_degraded",
            "gauge",
            "Set once the store is demoted to memory-only caching after an append failure.",
            &plain(self.store_degraded),
        );
        metric(
            "store_read_seconds_total",
            "counter",
            "Cumulative wall time reading results from the store.",
            &[(String::new(), secs6(self.store_read_us))],
        );
        metric(
            "store_write_seconds_total",
            "counter",
            "Cumulative wall time appending results to the store.",
            &[(String::new(), secs6(self.store_write_us))],
        );
        metric(
            "store_recovery_seconds_total",
            "counter",
            "Wall time of the store's open-time recovery scan.",
            &[(String::new(), secs6(self.store_recovery_us))],
        );
        metric(
            "graphs_live",
            "gauge",
            "Named graphs currently registered (created minus deleted).",
            &plain(self.graphs_live),
        );
        metric(
            "graph_deltas_by_class_total",
            "counter",
            "Graph PATCH ops by maintenance class (commuted, repaired, recomputed).",
            &[
                (
                    "{class=\"commuted\"}".to_string(),
                    self.graph_deltas_commuted.to_string(),
                ),
                (
                    "{class=\"repaired\"}".to_string(),
                    self.graph_deltas_repaired.to_string(),
                ),
                (
                    "{class=\"recomputed\"}".to_string(),
                    self.graph_deltas_recomputed.to_string(),
                ),
            ],
        );
        metric(
            "engine_iterations_total",
            "counter",
            "Engine iterations across executed runs.",
            &plain(self.engine_iterations),
        );
        metric(
            "engine_local_rounds_total",
            "counter",
            "LOCAL rounds across executed runs.",
            &plain(self.engine_local_rounds),
        );

        // Histogram: cumulative buckets over the fixed bounds, then
        // +Inf, _sum, and _count — the standard exposition shape.
        let mut hist_samples: Vec<(String, String)> = Vec::new();
        let mut cumulative = 0u64;
        for (i, &bound) in LATENCY_BUCKETS_US.iter().enumerate() {
            cumulative += self.latency_bucket_counts[i];
            hist_samples.push((
                format!("_bucket{{le=\"{}\"}}", bound as f64 / 1e6),
                cumulative.to_string(),
            ));
        }
        hist_samples.push((
            "_bucket{le=\"+Inf\"}".to_string(),
            self.latency_hist_count.to_string(),
        ));
        hist_samples.push(("_sum".to_string(), secs6(self.latency_hist_sum_us)));
        hist_samples.push(("_count".to_string(), self.latency_hist_count.to_string()));
        metric(
            "engine_run_seconds",
            "histogram",
            "Engine-run latency over fixed buckets (cache hits excluded).",
            &hist_samples,
        );

        metric(
            "engine_run_p50_seconds",
            "gauge",
            "Median engine-run latency over the recent window.",
            &[(String::new(), secs6(self.p50_latency_us))],
        );
        metric(
            "engine_run_p95_seconds",
            "gauge",
            "95th-percentile engine-run latency over the recent window.",
            &[(String::new(), secs6(self.p95_latency_us))],
        );
        metric(
            "uptime_seconds",
            "gauge",
            "Time since the service started.",
            &[(String::new(), format!("{:.3}", self.uptime.as_secs_f64()))],
        );
        out
    }
}

/// Escapes a Prometheus label value: backslash, double quote, and
/// newline must be backslash-escaped per the text exposition format.
pub(crate) fn escape_label_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_up() {
        let m = ServiceMetrics::new();
        m.on_cache_miss();
        m.on_executed(10, 70, Duration::from_micros(1_000));
        m.on_cache_hit();
        m.on_disk_hit();
        m.on_coalesced();
        m.on_cache_miss();
        m.on_executed(6, 42, Duration::from_micros(3_000));
        m.on_shed();
        m.set_store_records(2);
        // Four of the five admitted waiters collected their response;
        // the fifth (say the coalesced one) timed out first, and the
        // shed submission never got a handle at all.
        for _ in 0..4 {
            m.on_delivered();
        }
        m.on_timed_out();
        let s = m.snapshot();
        assert_eq!(s.jobs_submitted, 6);
        assert_eq!(
            s.jobs_submitted,
            s.cache_hits + s.cache_misses + s.coalesced + s.shed,
            "a disk hit is a cache hit, not a fifth class"
        );
        assert_eq!(s.shed, 1);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.disk_hits, 1);
        assert_eq!(s.store_records, 2);
        assert_eq!(s.jobs_completed, 4);
        assert_eq!(s.timed_out, 1);
        assert_eq!(s.cache_hit_rate, 0.5);
        assert_eq!(s.engine_iterations, 16);
        assert_eq!(s.engine_local_rounds, 112);
        assert_eq!(s.p50_latency_us, 1_000);
        assert_eq!(s.p95_latency_us, 3_000);
    }

    #[test]
    fn snapshot_is_coherent_under_concurrent_classification() {
        // Regression test for the snapshot race: before classification
        // moved under one lock, a snapshot could land between the
        // submitted increment and the class increment and observe
        // `jobs != hits + misses + coalesced`. Hammer the three
        // classification paths from three threads while a reader
        // asserts the identity on every snapshot.
        let m = ServiceMetrics::new();
        std::thread::scope(|scope| {
            scope.spawn(|| (0..2_000).for_each(|_| m.on_cache_hit()));
            scope.spawn(|| (0..2_000).for_each(|_| m.on_cache_miss()));
            scope.spawn(|| (0..2_000).for_each(|_| m.on_coalesced()));
            scope.spawn(|| (0..2_000).for_each(|_| m.on_disk_hit()));
            scope.spawn(|| (0..2_000).for_each(|_| m.on_shed()));
            for _ in 0..500 {
                let s = m.snapshot();
                assert_eq!(
                    s.jobs_submitted,
                    s.cache_hits + s.cache_misses + s.coalesced + s.shed,
                    "snapshot observed a mid-update classification"
                );
                assert!(
                    s.disk_hits <= s.cache_hits,
                    "snapshot observed a mid-update disk hit"
                );
            }
        });
        let s = m.snapshot();
        assert_eq!(s.jobs_submitted, 10_000);
        assert_eq!(s.cache_hits + s.cache_misses + s.coalesced + s.shed, 10_000);
        assert_eq!(s.disk_hits, 2_000);
        assert_eq!(s.shed, 2_000);
    }

    #[test]
    fn json_snapshot_is_wellformed_enough() {
        let m = ServiceMetrics::new();
        let json = m.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cache_hit_rate\":0.000000"));
        assert!(json.contains("\"jobs_submitted\":0"));
    }

    #[test]
    fn label_values_escape_per_exposition_format() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
    }

    #[test]
    fn latency_histogram_buckets_count_correctly() {
        let m = ServiceMetrics::new();
        // One sample inside the first bucket, one on a bucket boundary
        // (le is inclusive), one past every bound (the +Inf slot).
        m.on_executed(1, 1, Duration::from_micros(50));
        m.on_executed(1, 1, Duration::from_micros(500));
        m.on_executed(1, 1, Duration::from_micros(900_000));
        let s = m.snapshot();
        assert_eq!(s.latency_hist_count, 3);
        assert_eq!(s.latency_hist_sum_us, 50 + 500 + 900_000);
        assert_eq!(s.latency_bucket_counts[0], 1, "50us <= 100us");
        assert_eq!(
            s.latency_bucket_counts[1], 1,
            "500us lands ON the 500us bound"
        );
        assert_eq!(
            s.latency_bucket_counts[LATENCY_BUCKETS_US.len()],
            1,
            "900ms overflows to +Inf"
        );
        assert_eq!(s.latency_bucket_counts.iter().sum::<u64>(), 3);
    }

    /// The golden-format test: structure, ordering, escaping, and
    /// byte-determinism of the Prometheus exposition.
    #[test]
    fn prometheus_exposition_is_wellformed_and_deterministic() {
        let m = ServiceMetrics::new();
        m.on_cache_miss();
        m.on_executed(10, 70, Duration::from_micros(1_000));
        m.on_cache_hit();
        m.on_coalesced();
        m.on_shed();
        m.on_delivered();
        m.on_connection_timed_out();
        m.set_store_records(1);
        m.set_store_dropped(2);
        m.set_store_degraded();
        m.set_graphs_live(3);
        m.on_graph_deltas(5, 2, 1);
        m.on_graph_deltas(1, 0, 0);
        let mut snap = m.snapshot();
        // Pin the wall-clock-dependent fields so repeated renderings
        // must agree byte-for-byte.
        snap.uptime = Duration::from_millis(1_500);
        snap.throughput_jobs_per_sec = 0.0;
        let text = snap.to_prometheus();
        assert_eq!(
            text,
            snap.to_prometheus(),
            "exposition must be deterministic"
        );

        // Every sample line's metric has HELP and TYPE lines, and they
        // precede it.
        for line in text.lines() {
            assert!(!line.is_empty());
            if line.starts_with('#') {
                continue;
            }
            let name = line
                .split(['{', ' '])
                .next()
                .unwrap()
                .trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            let help_at = text.find(&format!("# HELP {name} "));
            let type_at = text.find(&format!("# TYPE {name} "));
            let sample_at = text.find(line).unwrap();
            assert!(
                help_at.is_some_and(|h| h < sample_at),
                "no HELP before {line}"
            );
            assert!(
                type_at.is_some_and(|t| t < sample_at),
                "no TYPE before {line}"
            );
        }

        // Fixed emission order: jobs total before class split, class
        // labels in hit/miss/coalesced order, histogram before p50.
        let pos = |needle: &str| {
            text.find(needle)
                .unwrap_or_else(|| panic!("missing {needle}"))
        };
        assert!(pos("spanner_jobs_total ") < pos("class=\"cache_hit\""));
        assert!(pos("class=\"cache_hit\"") < pos("class=\"cache_miss\""));
        assert!(pos("class=\"cache_miss\"") < pos("class=\"coalesced\""));
        assert!(pos("class=\"coalesced\"") < pos("class=\"shed\""));
        assert!(pos("spanner_engine_run_seconds_bucket") < pos("spanner_engine_run_p50_seconds"));
        assert!(text.contains("spanner_store_records_dropped_total 2\n"));
        assert!(text.contains("spanner_store_degraded 1\n"));
        assert!(text.contains("spanner_connections_timed_out_total 1\n"));
        assert!(text.contains("le=\"+Inf\""));

        // Graph metrics: the live gauge precedes the per-class delta
        // counter, whose labels land in commuted/repaired/recomputed
        // order between the store section and the engine totals.
        assert!(text.contains("spanner_graphs_live 3\n"));
        assert!(pos("spanner_graphs_live 3") < pos("class=\"commuted\""));
        assert!(pos("spanner_store_recovery_seconds_total") < pos("spanner_graphs_live 3"));
        assert!(pos("class=\"commuted\"") < pos("class=\"repaired\""));
        assert!(pos("class=\"repaired\"") < pos("class=\"recomputed\""));
        assert!(pos("class=\"recomputed\"") < pos("spanner_engine_iterations_total"));
        assert!(text.contains("spanner_graph_deltas_by_class_total{class=\"commuted\"} 6\n"));
        assert!(text.contains("spanner_graph_deltas_by_class_total{class=\"repaired\"} 2\n"));
        assert!(text.contains("spanner_graph_deltas_by_class_total{class=\"recomputed\"} 1\n"));

        // The class series sum back to the total — the same invariant
        // the JSON body guarantees.
        let value = |prefix: &str| -> u64 {
            text.lines()
                .find(|l| l.starts_with(prefix))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("no sample for {prefix}"))
        };
        let class_sum: u64 = ["cache_hit", "cache_miss", "coalesced", "shed"]
            .iter()
            .map(|c| value(&format!("spanner_jobs_by_class_total{{class=\"{c}\"}}")))
            .sum();
        assert_eq!(value("spanner_jobs_total "), class_sum);

        // Histogram buckets are cumulative and end at the count.
        let bucket_values: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("spanner_engine_run_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(bucket_values.len(), LATENCY_BUCKETS_US.len() + 1);
        assert!(bucket_values.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(
            *bucket_values.last().unwrap(),
            value("spanner_engine_run_seconds_count")
        );
    }
}
