//! A deterministic fixed-size worker pool over `std::thread` with a
//! bounded job queue.
//!
//! Jobs are opaque closures; the pool guarantees FIFO dispatch order
//! and backpressure ([`Pool::submit`] blocks while the queue is at
//! capacity), nothing more. Determinism of the *service* does not come
//! from the pool — jobs are independent seeded engine runs — so any
//! interleaving of workers yields the same per-job results.
//!
//! On drop the pool stops accepting work, drains the queued jobs, and
//! joins every worker, so no submitted job is ever silently lost.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct QueueState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

/// A fixed-size worker pool with a bounded FIFO job queue.
pub(crate) struct Pool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns `workers` threads sharing a queue of at most `capacity`
    /// pending jobs.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `capacity` is zero.
    pub fn new(workers: usize, capacity: usize) -> Self {
        assert!(workers >= 1, "pool needs at least one worker");
        assert!(capacity >= 1, "queue capacity must be positive");
        let inner = Arc::new(PoolInner {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        let workers = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("dsa-service-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Pool { inner, workers }
    }

    /// Enqueues a job, blocking while the queue is at capacity.
    ///
    /// Jobs submitted during shutdown are dropped; the only caller is
    /// [`crate::Service`], which never submits after starting its own
    /// teardown.
    pub fn submit(&self, job: Job) {
        let mut state = self.inner.state.lock().expect("pool lock");
        while state.queue.len() >= self.inner.capacity && !state.shutdown {
            state = self.inner.not_full.wait(state).expect("pool lock");
        }
        if state.shutdown {
            return;
        }
        state.queue.push_back(job);
        drop(state);
        self.inner.not_empty.notify_one();
    }

    /// Number of jobs waiting in the queue (diagnostic only).
    pub fn queued(&self) -> usize {
        self.inner.state.lock().expect("pool lock").queue.len()
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut state = inner.state.lock().expect("pool lock");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = inner.not_empty.wait(state).expect("pool lock");
            }
        };
        inner.not_full.notify_one();
        job();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock().expect("pool lock");
            state.shutdown = true;
        }
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn runs_every_submitted_job() {
        let pool = Pool::new(4, 8);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            }));
        }
        for _ in 0..100 {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn drop_drains_the_queue() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            // One slow worker, deep queue: most jobs are still queued
            // when drop begins, and must run anyway.
            let pool = Pool::new(1, 64);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.submit(Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }));
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        // One worker pinned on a gate, capacity 1: job A runs, job B
        // fills the queue, so a third submit must block until the
        // worker drains one job.
        let pool = Arc::new(Pool::new(1, 1));
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = Arc::new(Mutex::new(gate_rx));
        let done = Arc::new(AtomicUsize::new(0));
        let blocking_job = || {
            let gate_rx = Arc::clone(&gate_rx);
            let done = Arc::clone(&done);
            Box::new(move || {
                gate_rx.lock().unwrap().recv().unwrap();
                done.fetch_add(1, Ordering::SeqCst);
            })
        };
        pool.submit(blocking_job()); // taken by the worker
        pool.submit(blocking_job()); // fills the queue
        let third_submitted = Arc::new(AtomicUsize::new(0));
        let submitter = {
            let pool = Arc::clone(&pool);
            let third_submitted = Arc::clone(&third_submitted);
            let job = blocking_job();
            std::thread::spawn(move || {
                pool.submit(job);
                third_submitted.store(1, Ordering::SeqCst);
            })
        };
        // The third submit stays blocked while the queue is full.
        std::thread::sleep(std::time::Duration::from_millis(100));
        assert_eq!(third_submitted.load(Ordering::SeqCst), 0);
        assert_eq!(pool.queued(), 1);
        // Releasing one job drains the queue and unblocks the submit.
        gate_tx.send(()).unwrap();
        submitter.join().unwrap();
        assert_eq!(third_submitted.load(Ordering::SeqCst), 1);
        gate_tx.send(()).unwrap();
        gate_tx.send(()).unwrap();
        drop(Arc::try_unwrap(pool).ok().expect("sole owner")); // joins: all three ran
        assert_eq!(done.load(Ordering::SeqCst), 3);
    }
}
