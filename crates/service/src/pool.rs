//! A deterministic fixed-size worker pool over `std::thread` with a
//! bounded job queue.
//!
//! Jobs are opaque closures; the pool guarantees FIFO dispatch order
//! and bounded admission, nothing more. Determinism of the *service*
//! does not come from the pool — jobs are independent seeded engine
//! runs — so any interleaving of workers yields the same per-job
//! results.
//!
//! Admission is bounded two ways: by queue *depth* (`capacity`) and by
//! a queue *byte budget* (the sum of per-job cost estimates supplied
//! at submission). [`Pool::try_submit`] rejects instead of blocking
//! when either budget is exhausted — the caller sheds the job and
//! tells its client to retry — while the legacy [`Pool::submit`]
//! blocks on depth (used by tests and tools that want backpressure
//! semantics).
//!
//! On drop the pool stops accepting work, drains the queued jobs, and
//! joins every worker, so no admitted job is ever silently lost.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;

use dsa_runtime::sync::OrderedMutex;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct QueueState {
    queue: VecDeque<(Job, usize)>,
    /// Sum of the cost estimates of the queued jobs.
    queued_cost: usize,
    shutdown: bool,
}

struct PoolInner {
    state: OrderedMutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    byte_budget: usize,
}

/// A fixed-size worker pool with a bounded FIFO job queue.
pub(crate) struct Pool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns `workers` threads sharing a queue of at most `capacity`
    /// pending jobs whose cost estimates sum to at most `byte_budget`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `capacity` is zero.
    pub fn new(workers: usize, capacity: usize, byte_budget: usize) -> Self {
        assert!(workers >= 1, "pool needs at least one worker");
        assert!(capacity >= 1, "queue capacity must be positive");
        let inner = Arc::new(PoolInner {
            state: OrderedMutex::new(
                "pool_queue",
                80,
                QueueState {
                    queue: VecDeque::new(),
                    queued_cost: 0,
                    shutdown: false,
                },
            ),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            byte_budget,
        });
        let workers = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("dsa-service-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread") // dsa-lint: allow(DSA-P001, reason="startup-only, worker threads spawn at pool construction before any traffic")
            })
            .collect();
        Pool { inner, workers }
    }

    /// Enqueues a job, blocking while the queue is at depth capacity
    /// (the byte budget is not consulted; the job costs 0 bytes).
    ///
    /// Jobs submitted during shutdown are dropped; the only callers
    /// never submit after starting their own teardown. The service
    /// itself sheds via [`Pool::try_submit`]; blocking admission
    /// survives for tests that want backpressure semantics.
    #[cfg(test)]
    pub fn submit(&self, job: Job) {
        let mut state = self.inner.state.lock();
        while state.queue.len() >= self.inner.capacity && !state.shutdown {
            state = state.wait_on(&self.inner.not_full);
        }
        if state.shutdown {
            return;
        }
        state.queue.push_back((job, 0));
        drop(state);
        self.inner.not_empty.notify_one();
    }

    /// Non-blocking admission: enqueues `job` (with cost estimate
    /// `cost` bytes) unless the queue is at depth capacity or the new
    /// cost would exceed the byte budget. An *empty* queue always
    /// admits, so a single job larger than the whole budget is still
    /// servable. Returns whether the job was admitted (during
    /// shutdown the job is dropped and reported as admitted, matching
    /// [`Pool::submit`]).
    pub fn try_submit(&self, job: Job, cost: usize) -> bool {
        let mut state = self.inner.state.lock();
        if state.shutdown {
            return true;
        }
        let fits = state.queue.is_empty()
            || (state.queue.len() < self.inner.capacity
                && state.queued_cost.saturating_add(cost) <= self.inner.byte_budget);
        if !fits {
            return false;
        }
        state.queued_cost += cost;
        state.queue.push_back((job, cost));
        drop(state);
        self.inner.not_empty.notify_one();
        true
    }

    /// Number of jobs waiting in the queue (diagnostic only).
    pub fn queued(&self) -> usize {
        self.inner.state.lock().queue.len()
    }

    /// Summed cost estimates of the queued jobs (diagnostic only).
    #[cfg(test)]
    pub fn queued_bytes(&self) -> usize {
        self.inner.state.lock().queued_cost
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut state = inner.state.lock();
            loop {
                if let Some((job, cost)) = state.queue.pop_front() {
                    state.queued_cost -= cost;
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = state.wait_on(&inner.not_empty);
            }
        };
        inner.not_full.notify_one();
        job();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock();
            state.shutdown = true;
        }
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{mpsc, Mutex};

    #[test]
    fn runs_every_submitted_job() {
        let pool = Pool::new(4, 8, usize::MAX);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            }));
        }
        for _ in 0..100 {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn drop_drains_the_queue() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            // One slow worker, deep queue: most jobs are still queued
            // when drop begins, and must run anyway.
            let pool = Pool::new(1, 64, usize::MAX);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.submit(Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }));
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        // One worker pinned on a gate, capacity 1: job A runs, job B
        // fills the queue, so a third submit must block until the
        // worker drains one job.
        let pool = Arc::new(Pool::new(1, 1, usize::MAX));
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = Arc::new(Mutex::new(gate_rx));
        let done = Arc::new(AtomicUsize::new(0));
        let blocking_job = || {
            let gate_rx = Arc::clone(&gate_rx);
            let done = Arc::clone(&done);
            Box::new(move || {
                gate_rx.lock().unwrap().recv().unwrap();
                done.fetch_add(1, Ordering::SeqCst);
            })
        };
        pool.submit(blocking_job()); // taken by the worker
        pool.submit(blocking_job()); // fills the queue
        let third_submitted = Arc::new(AtomicUsize::new(0));
        let submitter = {
            let pool = Arc::clone(&pool);
            let third_submitted = Arc::clone(&third_submitted);
            let job = blocking_job();
            std::thread::spawn(move || {
                pool.submit(job);
                third_submitted.store(1, Ordering::SeqCst);
            })
        };
        // The third submit stays blocked while the queue is full.
        std::thread::sleep(std::time::Duration::from_millis(100));
        assert_eq!(third_submitted.load(Ordering::SeqCst), 0);
        assert_eq!(pool.queued(), 1);
        // Releasing one job drains the queue and unblocks the submit.
        gate_tx.send(()).unwrap();
        submitter.join().unwrap();
        assert_eq!(third_submitted.load(Ordering::SeqCst), 1);
        gate_tx.send(()).unwrap();
        gate_tx.send(()).unwrap();
        drop(Arc::try_unwrap(pool).ok().expect("sole owner")); // joins: all three ran
        assert_eq!(done.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn try_submit_sheds_on_depth_and_bytes() {
        // One worker pinned on a gate; depth capacity 2, byte budget
        // 100. The pinned job holds no queue slot, so shedding
        // decisions are made purely on the queued jobs.
        let pool = Pool::new(1, 2, 100);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = Arc::new(Mutex::new(gate_rx));
        let pin = || {
            let gate_rx = Arc::clone(&gate_rx);
            Box::new(move || {
                gate_rx.lock().unwrap().recv().unwrap();
            })
        };
        let wait_empty = || {
            while pool.queued() > 0 {
                std::thread::yield_now();
            }
        };
        assert!(pool.try_submit(pin(), 0));
        wait_empty(); // the worker picked the pin job up
                      // Empty queue admits even past the byte budget.
        assert!(pool.try_submit(Box::new(|| {}), 1_000));
        assert_eq!(pool.queued_bytes(), 1_000);
        // Non-empty and over budget: everything is shed, even free
        // jobs, until the queue drains.
        assert!(!pool.try_submit(Box::new(|| {}), 50));
        assert!(!pool.try_submit(Box::new(|| {}), 0));
        gate_tx.send(()).unwrap(); // unpin: the 1000-byte job drains
        wait_empty();
        assert!(pool.try_submit(pin(), 0));
        wait_empty(); // re-pinned
                      // Within budget: depth is the binding constraint.
        assert!(pool.try_submit(Box::new(|| {}), 60));
        assert!(pool.try_submit(Box::new(|| {}), 40));
        assert_eq!(pool.queued_bytes(), 100);
        assert!(!pool.try_submit(Box::new(|| {}), 0), "depth capacity 2");
        gate_tx.send(()).unwrap();
    }
}
