//! A blocking client for the `spanner-serve` wire protocol, used by
//! `spanner-cli`, the load bench, and the integration tests.

use std::net::{TcpStream, ToSocketAddrs};

use crate::job::{JobError, JobResponse, JobSpec};
use crate::wire::{
    decode_response, encode_ping_request, encode_request, encode_stats_request, read_frame,
    write_frame, Response,
};

/// One connection to a `spanner-serve` instance. Requests are
/// submitted synchronously, one frame in, one frame out.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    fn roundtrip(&mut self, payload: &str) -> Result<Response, JobError> {
        write_frame(&mut self.stream, payload.as_bytes())
            .map_err(|e| JobError::Io(e.to_string()))?;
        let bytes = self.roundtrip_raw_read()?;
        decode_response(&bytes)
    }

    fn roundtrip_raw_read(&mut self) -> Result<Vec<u8>, JobError> {
        read_frame(&mut self.stream)
            .map_err(|e| JobError::Io(e.to_string()))?
            .ok_or_else(|| JobError::Io("server closed the connection".into()))
    }

    /// Runs one job and decodes the response.
    pub fn run(&mut self, spec: &JobSpec) -> Result<JobResponse, JobError> {
        match self.roundtrip(&encode_request(spec))? {
            Response::Run(resp) => Ok(resp),
            Response::Error(m) => Err(JobError::Remote(m)),
            other => Err(JobError::Protocol(format!(
                "expected run response, got {other:?}"
            ))),
        }
    }

    /// Runs one job and returns the *raw response payload bytes* —
    /// what the byte-identity guarantee of the protocol is stated
    /// over.
    pub fn run_raw(&mut self, spec: &JobSpec) -> Result<Vec<u8>, JobError> {
        write_frame(&mut self.stream, encode_request(spec).as_bytes())
            .map_err(|e| JobError::Io(e.to_string()))?;
        self.roundtrip_raw_read()
    }

    /// Fetches the service metrics snapshot as one JSON line.
    pub fn stats_json(&mut self) -> Result<String, JobError> {
        match self.roundtrip(&encode_stats_request())? {
            Response::Stats(json) => Ok(json),
            Response::Error(m) => Err(JobError::Remote(m)),
            other => Err(JobError::Protocol(format!(
                "expected stats response, got {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), JobError> {
        match self.roundtrip(&encode_ping_request())? {
            Response::Pong => Ok(()),
            Response::Error(m) => Err(JobError::Remote(m)),
            other => Err(JobError::Protocol(format!("expected pong, got {other:?}"))),
        }
    }
}
