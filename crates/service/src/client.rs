//! A blocking client for the `spanner-serve` wire protocol, used by
//! `spanner-cli`, the load bench, and the integration tests.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

use crate::graphs::{
    DeltaOp, GraphCreated, GraphMeta, GraphPatched, GraphSpannerResult, GraphSpec,
};
use crate::job::{JobError, JobResponse, JobSpec};
use crate::retry::RetryPolicy;
use crate::wire::{
    decode_response, encode_graph_create, encode_graph_delete, encode_graph_get,
    encode_graph_patch, encode_graph_spanner_request, encode_hello_request, encode_ping_request,
    encode_request, encode_stats_request, read_frame, write_frame, Response, PROTO_VERSION,
};

/// One connection to a `spanner-serve` instance. Requests are
/// submitted synchronously, one frame in, one frame out.
pub struct Client {
    stream: TcpStream,
    /// The resolved peer address, kept so retries can reconnect after
    /// the server (or a chaos hook) drops the connection mid-frame.
    addr: SocketAddr,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let addr = stream.peer_addr()?;
        Ok(Client { stream, addr })
    }

    /// Drops the current connection and dials the same peer again.
    fn reconnect(&mut self) -> Result<(), JobError> {
        let stream = TcpStream::connect(self.addr).map_err(|e| JobError::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        self.stream = stream;
        Ok(())
    }

    fn roundtrip(&mut self, payload: &str) -> Result<Response, JobError> {
        write_frame(&mut self.stream, payload.as_bytes())
            .map_err(|e| JobError::Io(e.to_string()))?;
        let bytes = self.roundtrip_raw_read()?;
        decode_response(&bytes)
    }

    fn roundtrip_raw_read(&mut self) -> Result<Vec<u8>, JobError> {
        read_frame(&mut self.stream)
            .map_err(|e| JobError::Io(e.to_string()))?
            .ok_or_else(|| JobError::Io("server closed the connection".into()))
    }

    /// Runs one job and decodes the response. A shed job (`busy`
    /// frame) surfaces as [`JobError::Busy`]; see
    /// [`Client::run_with_retry`] for the retrying flavor.
    pub fn run(&mut self, spec: &JobSpec) -> Result<JobResponse, JobError> {
        match self.roundtrip(&encode_request(spec))? {
            Response::Run(resp) => Ok(resp),
            Response::Busy { retry_after_ms } => Err(JobError::Busy { retry_after_ms }),
            Response::Error(m) => Err(JobError::Remote(m)),
            other => Err(JobError::Protocol(format!(
                "expected run response, got {other:?}"
            ))),
        }
    }

    /// Like [`Client::run`], but retries shed jobs (honoring the
    /// server's retry hint), cancelled runs, and transport failures
    /// (reconnecting first) under `policy`'s capped jittered
    /// exponential backoff. Safe because a job response is a pure
    /// function of the spec: a resubmission can only return the same
    /// bytes.
    pub fn run_with_retry(
        &mut self,
        spec: &JobSpec,
        policy: &RetryPolicy,
    ) -> Result<JobResponse, JobError> {
        let mut attempt = 0u32;
        loop {
            let (hint, err) = match self.run(spec) {
                Ok(resp) => return Ok(resp),
                Err(e @ JobError::Busy { retry_after_ms }) => (Some(retry_after_ms), e),
                // A cancelled run crosses the wire as a generic error
                // frame carrying [`JobError::Cancelled`]'s message —
                // transient (an aborted engine run), so retryable.
                Err(e @ JobError::Remote(_)) if matches!(&e, JobError::Remote(m) if m == &JobError::Cancelled.to_string()) => {
                    (None, e)
                }
                Err(e @ JobError::Io(_)) => {
                    // The connection is gone or desynchronized (e.g. a
                    // mid-frame drop); replace it before retrying. A
                    // failed reconnect (server restarting) is itself
                    // retried: the dead stream just errors again.
                    match self.reconnect() {
                        Ok(()) => (None, e),
                        Err(re) => (None, re),
                    }
                }
                // Remote/protocol/validation errors repeat identically
                // on resubmission; fail fast.
                Err(e) => return Err(e),
            };
            if attempt >= policy.max_retries {
                return Err(err);
            }
            std::thread::sleep(policy.backoff(attempt, hint));
            attempt += 1;
        }
    }

    /// Runs one job and returns the *raw response payload bytes* —
    /// what the byte-identity guarantee of the protocol is stated
    /// over.
    pub fn run_raw(&mut self, spec: &JobSpec) -> Result<Vec<u8>, JobError> {
        write_frame(&mut self.stream, encode_request(spec).as_bytes())
            .map_err(|e| JobError::Io(e.to_string()))?;
        self.roundtrip_raw_read()
    }

    /// Fetches the service metrics snapshot as one JSON line.
    pub fn stats_json(&mut self) -> Result<String, JobError> {
        match self.roundtrip(&encode_stats_request())? {
            Response::Stats(json) => Ok(json),
            Response::Error(m) => Err(JobError::Remote(m)),
            other => Err(JobError::Protocol(format!(
                "expected stats response, got {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), JobError> {
        match self.roundtrip(&encode_ping_request())? {
            Response::Pong => Ok(()),
            Response::Error(m) => Err(JobError::Remote(m)),
            other => Err(JobError::Protocol(format!("expected pong, got {other:?}"))),
        }
    }

    /// Negotiates the protocol version: offers this crate's
    /// [`PROTO_VERSION`], returns the version the server settled on
    /// plus its advertised feature tokens (`graphs` at v2). A v1
    /// server answers the offer with an error frame — mapped here to
    /// `(1, [])`, because every server speaks v1.
    pub fn hello(&mut self) -> Result<(u64, Vec<String>), JobError> {
        match self.roundtrip(&encode_hello_request(PROTO_VERSION))? {
            Response::Hello { proto, features } => Ok((proto, features)),
            Response::Error(_) => Ok((1, Vec::new())),
            other => Err(JobError::Protocol(format!(
                "expected hello response, got {other:?}"
            ))),
        }
    }

    /// Shared decode tail for the graph calls: map `busy` frames to
    /// [`JobError::Busy`] and error frames to [`JobError::Remote`].
    fn expect_graph<T>(
        response: Response,
        what: &str,
        extract: impl FnOnce(Response) -> Option<T>,
    ) -> Result<T, JobError> {
        match response {
            Response::Busy { retry_after_ms } => Err(JobError::Busy { retry_after_ms }),
            Response::Error(m) => Err(JobError::Remote(m)),
            other => extract(other)
                .ok_or_else(|| JobError::Protocol(format!("expected {what} response"))),
        }
    }

    /// Creates (or idempotently re-creates) a named graph.
    pub fn graph_create(&mut self, spec: &GraphSpec) -> Result<GraphCreated, JobError> {
        let resp = self.roundtrip(&encode_graph_create(spec))?;
        Self::expect_graph(resp, "graph-create", |r| match r {
            Response::GraphCreated(c) => Some(c),
            _ => None,
        })
    }

    /// Applies a batch of edge deltas to a named graph.
    pub fn graph_patch(&mut self, id: &str, ops: &[DeltaOp]) -> Result<GraphPatched, JobError> {
        let resp = self.roundtrip(&encode_graph_patch(id, ops))?;
        Self::expect_graph(resp, "graph-patch", |r| match r {
            Response::GraphPatched(p) => Some(p),
            _ => None,
        })
    }

    /// Fetches a named graph's metadata and maintenance counters.
    pub fn graph_get(&mut self, id: &str) -> Result<GraphMeta, JobError> {
        let resp = self.roundtrip(&encode_graph_get(id))?;
        Self::expect_graph(resp, "graph-get", |r| match r {
            Response::GraphMeta(m) => Some(m),
            _ => None,
        })
    }

    /// Fetches the maintained spanner of a named graph.
    pub fn graph_spanner(&mut self, id: &str) -> Result<GraphSpannerResult, JobError> {
        let resp = self.roundtrip(&encode_graph_spanner_request(id))?;
        Self::expect_graph(resp, "graph-spanner", |r| match r {
            Response::GraphSpanner(s) => Some(s),
            _ => None,
        })
    }

    /// Fetches the maintained spanner as *raw response payload bytes*
    /// — what the per-graph byte-identity guarantee is stated over.
    pub fn graph_spanner_raw(&mut self, id: &str) -> Result<Vec<u8>, JobError> {
        write_frame(
            &mut self.stream,
            encode_graph_spanner_request(id).as_bytes(),
        )
        .map_err(|e| JobError::Io(e.to_string()))?;
        self.roundtrip_raw_read()
    }

    /// Deletes a named graph.
    pub fn graph_delete(&mut self, id: &str) -> Result<(), JobError> {
        let resp = self.roundtrip(&encode_graph_delete(id))?;
        Self::expect_graph(resp, "graph-delete", |r| match r {
            Response::GraphDeleted { .. } => Some(()),
            _ => None,
        })
    }
}
