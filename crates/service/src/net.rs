//! Shared TCP listener scaffolding for the serving frontends.
//!
//! Both frontends — the length-prefixed wire protocol
//! ([`crate::server`]) and the HTTP/JSON facade ([`crate::http`]) —
//! need the same machinery around their per-connection logic: an
//! accept loop that survives transient errors, one named thread per
//! connection with finished threads reaped as new ones arrive, a stop
//! flag polled by idle connections, and a shutdown path that unblocks
//! the accept call and joins everything. This module hosts that
//! machinery once; the frontends supply only their connection handler.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Polling interval for the shutdown flag while a connection is idle.
pub(crate) const IDLE_POLL: Duration = Duration::from_millis(200);

/// A bound listener serving connections on background threads.
/// Dropping it (or calling [`ListenerHandle::shutdown`]) stops the
/// accept loop and joins every connection thread.
pub(crate) struct ListenerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ListenerHandle {
    /// Binds `addr` (port 0 for ephemeral) and starts accepting.
    /// Every connection runs `handler(stream, stop)` on its own
    /// thread named `conn_name`.
    pub fn start<A, F>(
        addr: A,
        accept_name: &str,
        conn_name: &'static str,
        handler: F,
    ) -> std::io::Result<ListenerHandle>
    where
        A: ToSocketAddrs,
        F: Fn(TcpStream, &AtomicBool) + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(accept_name.to_string())
                .spawn(move || accept_loop(&listener, &stop, conn_name, &handler))?
        };
        Ok(ListenerHandle {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, waits for live connections to finish their
    /// current request, and joins the accept loop. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ListenerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop<F>(
    listener: &TcpListener,
    stop: &Arc<AtomicBool>,
    conn_name: &'static str,
    handler: &F,
) where
    F: Fn(TcpStream, &AtomicBool) + Send + Sync,
{
    // Joined on exit so shutdown leaves no detached threads behind;
    // finished handles are reaped as new connections arrive so the
    // list tracks live connections, not lifetime connection count.
    std::thread::scope(|scope| {
        let mut conn_threads: Vec<std::thread::ScopedJoinHandle<'_, ()>> = Vec::new();
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let stop = Arc::clone(stop);
                    let spawned = std::thread::Builder::new()
                        .name(conn_name.into())
                        .spawn_scoped(scope, move || handler(stream, &stop));
                    conn_threads.retain(|t| !t.is_finished());
                    match spawned {
                        Ok(handle) => conn_threads.push(handle),
                        // Thread exhaustion is the same overload as an
                        // accept error: shed this connection (the
                        // stream was moved into the failed spawn and
                        // is already closed), back off, keep listening.
                        Err(e) => {
                            dsa_runtime::obs::warn(
                                conn_name,
                                "connection shed: thread spawn failed",
                                &[("error", &e)],
                            );
                            std::thread::sleep(Duration::from_millis(50));
                        }
                    }
                }
                Err(e) => {
                    // Accept errors (aborted handshakes, EINTR, fd
                    // exhaustion under load) are transient for a
                    // daemon: back off briefly and keep listening.
                    // Shutdown is signalled through `stop`, never
                    // through an error.
                    dsa_runtime::obs::debug(
                        conn_name,
                        "transient accept error; backing off",
                        &[("error", &e)],
                    );
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
        // The scope joins any still-running connection threads.
    });
}

/// Wraps a read-timeout stream so timeout errors read as retries while
/// the frontend is live and as clean EOF once shutdown is requested
/// (so a frame/request boundary maps to a clean close).
///
/// **Slow-loris defense.** An idle connection between messages may
/// block indefinitely (keep-alive costs only a thread), but once the
/// first byte of a message arrives, a deadline of `budget` is armed:
/// the whole message must be read before it expires, or reads fail
/// with [`ErrorKind::TimedOut`] and [`ShutdownReader::timed_out`]
/// reports true — the frontends close the connection and count it. The
/// caller disarms the deadline at each message boundary with
/// [`ShutdownReader::finish_message`].
pub(crate) struct ShutdownReader<'a> {
    stream: &'a TcpStream,
    stop: &'a AtomicBool,
    budget: Duration,
    deadline: Option<Instant>,
    timed_out: bool,
}

impl<'a> ShutdownReader<'a> {
    /// Wraps `stream` (which must already have a short read timeout
    /// set, e.g. [`IDLE_POLL`]) with a per-message read budget.
    pub fn new(stream: &'a TcpStream, stop: &'a AtomicBool, budget: Duration) -> Self {
        ShutdownReader {
            stream,
            stop,
            budget,
            deadline: None,
            timed_out: false,
        }
    }

    /// Disarms the in-message deadline: the next message may begin
    /// arbitrarily later (idle keep-alive), and its first byte re-arms.
    pub fn finish_message(&mut self) {
        self.deadline = None;
    }

    /// Whether a read failed because the message exceeded its budget
    /// (as opposed to EOF or a transport error).
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }

    fn expire(&mut self) -> std::io::Error {
        self.timed_out = true;
        std::io::Error::new(
            ErrorKind::TimedOut,
            format!("read exceeded the {:?} message budget", self.budget),
        )
    }
}

impl std::io::Read for ShutdownReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self
                .deadline
                .is_some_and(|deadline| Instant::now() >= deadline)
            {
                return Err(self.expire());
            }
            match std::io::Read::read(&mut self.stream, buf) {
                Ok(n) => {
                    // First byte of a message arms the deadline; the
                    // budget covers everything up to finish_message().
                    if n > 0 && self.deadline.is_none() {
                        self.deadline = Some(Instant::now() + self.budget);
                    }
                    return Ok(n);
                }
                Err(e)
                    if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
                        && !self.stop.load(Ordering::SeqCst) =>
                {
                    continue
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    // Shutdown requested: report EOF.
                    return Ok(0);
                }
                other => return other,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn slow_loris_reads_expire_but_idle_connections_do_not() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server
            .set_read_timeout(Some(Duration::from_millis(5)))
            .unwrap();
        let stop = AtomicBool::new(false);
        let mut reader = ShutdownReader::new(&server, &stop, Duration::from_millis(60));
        // Idle (no bytes yet): well past the budget, nothing expires —
        // the reader keeps retrying. Probe via a thread that writes
        // after an idle stretch longer than the budget.
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            client.write_all(b"x").unwrap();
            client.flush().unwrap();
            client // keep the connection alive, now dribbling
        });
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte).expect("idle is not a timeout");
        assert_eq!(&byte, b"x");
        // Armed (mid-message): the peer goes silent and the budget
        // expires with a TimedOut error, flagged as such.
        let err = reader.read_exact(&mut byte).expect_err("must expire");
        assert_eq!(err.kind(), ErrorKind::TimedOut);
        assert!(reader.timed_out());
        drop(writer.join().unwrap());
    }

    #[test]
    fn finish_message_disarms_the_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server
            .set_read_timeout(Some(Duration::from_millis(5)))
            .unwrap();
        let stop = AtomicBool::new(false);
        let mut reader = ShutdownReader::new(&server, &stop, Duration::from_millis(60));
        client.write_all(b"a").unwrap();
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte).unwrap();
        reader.finish_message();
        // A pause longer than the budget between messages is fine.
        std::thread::sleep(Duration::from_millis(120));
        client.write_all(b"b").unwrap();
        reader.read_exact(&mut byte).expect("new message re-arms");
        assert_eq!(&byte, b"b");
        assert!(!reader.timed_out());
    }
}
