//! `lint.toml` — dsa-lint's configuration, parsed by hand.
//!
//! The build is offline (no crates.io), so this module implements the
//! small TOML subset the config actually uses: `[table.subkey]`
//! headers, `[[array-of-tables]]` headers, and `key = value` pairs
//! where a value is a string, an integer, or an array of strings.
//! Anything outside that subset is a hard error — a config that
//! silently drops keys is worse than no config.
//!
//! Schema:
//!
//! ```toml
//! exclude = ["crates/lint/tests/fixtures/**"]   # never scanned
//!
//! [rules.DSA-D001]            # one table per rule id
//! paths = ["crates/core/src/dist/*.rs"]   # glob scope (* and **)
//!
//! [unsafe]
//! deny_ok = ["crates/service/src/bin/spanner_serve.rs"]
//!
//! [[lock]]                    # the workspace lock inventory
//! name = "cache"
//! rank = 40
//! file = "crates/service/src/service.rs"
//! field = "cache"             # struct field the lock lives in
//!
//! [[external-lock]]           # ranked but not constructed in scope
//! name = "flight_ring"
//! rank = 100
//!
//! [[assume]]                  # call sites the analysis can't resolve
//! call = "metrics.on_shed"    # `recv.method(` or a bare `name(`
//! locks = ["metrics_classified"]
//! ```

use std::collections::BTreeMap;

/// A declared lock: its place in the global order and where it lives.
#[derive(Debug, Clone)]
pub struct LockDecl {
    pub name: String,
    pub rank: u32,
    /// Repo-relative path of the file that constructs it.
    pub file: String,
    /// The struct field the lock is stored in; acquisition sites are
    /// recognized as `<field>.lock()`.
    pub field: String,
}

/// A lock that participates in the rank order but is constructed
/// outside the analyzed scope (e.g. in another crate).
#[derive(Debug, Clone)]
pub struct ExternalLock {
    pub name: String,
    pub rank: u32,
}

/// A manual edge for calls the static analysis cannot resolve: when a
/// call site textually matches `call`, the analysis assumes the callee
/// acquires `locks`.
#[derive(Debug, Clone)]
pub struct Assume {
    pub call: String,
    pub locks: Vec<String>,
}

/// The parsed configuration.
#[derive(Debug, Default)]
pub struct Config {
    /// Rule id -> path globs the rule applies to.
    pub rules: BTreeMap<String, Vec<String>>,
    /// Globs excluded from every scan (fixtures, vendored code).
    pub exclude: Vec<String>,
    /// Files where `#![deny(unsafe_code)]` satisfies DSA-U001.
    pub deny_ok: Vec<String>,
    pub locks: Vec<LockDecl>,
    pub external_locks: Vec<ExternalLock>,
    pub assumes: Vec<Assume>,
}

impl Config {
    /// Parses the subset described in the module docs. Errors carry
    /// the offending line number.
    pub fn parse(src: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        // Current insertion target for key = value lines.
        enum Target {
            Top,
            Rule(String),
            Unsafe,
            Lock,
            ExternalLock,
            Assume,
        }
        let mut target = Target::Top;

        // Join multi-line arrays: a `key = [` whose brackets don't
        // balance on one line absorbs following lines until they do.
        let mut joined: Vec<(usize, String)> = Vec::new();
        for (lineno, raw) in src.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            match joined.last_mut() {
                Some((_, prev)) if !brackets_balance(prev) => {
                    prev.push(' ');
                    prev.push_str(&line);
                }
                _ => joined.push((lineno + 1, line)),
            }
        }
        for (lineno, line) in joined {
            let line = line.as_str();
            if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                target = match header.trim() {
                    "lock" => {
                        cfg.locks.push(LockDecl {
                            name: String::new(),
                            rank: 0,
                            file: String::new(),
                            field: String::new(),
                        });
                        Target::Lock
                    }
                    "external-lock" => {
                        cfg.external_locks.push(ExternalLock {
                            name: String::new(),
                            rank: 0,
                        });
                        Target::ExternalLock
                    }
                    "assume" => {
                        cfg.assumes.push(Assume {
                            call: String::new(),
                            locks: Vec::new(),
                        });
                        Target::Assume
                    }
                    other => return Err(format!("line {lineno}: unknown table array [[{other}]]")),
                };
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let header = header.trim();
                target = if let Some(rule) = header.strip_prefix("rules.") {
                    let id = rule.trim().trim_matches('"').to_string();
                    cfg.rules.entry(id.clone()).or_default();
                    Target::Rule(id)
                } else if header == "unsafe" {
                    Target::Unsafe
                } else {
                    return Err(format!("line {lineno}: unknown table [{header}]"));
                };
                continue;
            }
            let (key, value) = match line.split_once('=') {
                Some((k, v)) => (k.trim(), v.trim()),
                None => return Err(format!("line {lineno}: expected `key = value`")),
            };
            let val = Value::parse(value)
                .map_err(|e| format!("line {lineno}: bad value for `{key}`: {e}"))?;
            match (&mut target, key) {
                (Target::Top, "exclude") => cfg.exclude = val.into_strings(lineno)?,
                (Target::Rule(id), "paths") => {
                    let paths = val.into_strings(lineno)?;
                    cfg.rules.insert(id.clone(), paths);
                }
                (Target::Unsafe, "deny_ok") => cfg.deny_ok = val.into_strings(lineno)?,
                (Target::Lock, k) => {
                    let lock = cfg.locks.last_mut().ok_or("no [[lock]]")?;
                    match k {
                        "name" => lock.name = val.into_string(lineno)?,
                        "rank" => lock.rank = val.into_int(lineno)?,
                        "file" => lock.file = val.into_string(lineno)?,
                        "field" => lock.field = val.into_string(lineno)?,
                        _ => return Err(format!("line {lineno}: unknown [[lock]] key `{k}`")),
                    }
                }
                (Target::ExternalLock, k) => {
                    let lock = cfg
                        .external_locks
                        .last_mut()
                        .ok_or("no [[external-lock]]")?;
                    match k {
                        "name" => lock.name = val.into_string(lineno)?,
                        "rank" => lock.rank = val.into_int(lineno)?,
                        _ => {
                            return Err(format!(
                                "line {lineno}: unknown [[external-lock]] key `{k}`"
                            ))
                        }
                    }
                }
                (Target::Assume, k) => {
                    let assume = cfg.assumes.last_mut().ok_or("no [[assume]]")?;
                    match k {
                        "call" => assume.call = val.into_string(lineno)?,
                        "locks" => assume.locks = val.into_strings(lineno)?,
                        _ => return Err(format!("line {lineno}: unknown [[assume]] key `{k}`")),
                    }
                }
                (_, k) => return Err(format!("line {lineno}: key `{k}` not valid here")),
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    fn validate(&self) -> Result<(), String> {
        let mut names: Vec<&str> = Vec::new();
        for l in &self.locks {
            if l.name.is_empty() || l.file.is_empty() || l.field.is_empty() {
                return Err(format!(
                    "[[lock]] `{}` must declare name, rank, file and field",
                    l.name
                ));
            }
            names.push(&l.name);
        }
        for l in &self.external_locks {
            if l.name.is_empty() {
                return Err("[[external-lock]] must declare a name".into());
            }
            names.push(&l.name);
        }
        names.sort_unstable();
        if let Some(w) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(format!("duplicate lock name `{}`", w[0]));
        }
        let known = |n: &String| names.binary_search(&n.as_str()).is_ok();
        for a in &self.assumes {
            if a.call.is_empty() {
                return Err("[[assume]] must declare `call`".into());
            }
            if let Some(bad) = a.locks.iter().find(|l| !known(l)) {
                return Err(format!(
                    "[[assume]] for `{}` names undeclared lock `{bad}`",
                    a.call
                ));
            }
        }
        Ok(())
    }

    /// Rank lookup across declared and external locks.
    pub fn rank_of(&self, name: &str) -> Option<u32> {
        self.locks
            .iter()
            .find(|l| l.name == name)
            .map(|l| l.rank)
            .or_else(|| {
                self.external_locks
                    .iter()
                    .find(|l| l.name == name)
                    .map(|l| l.rank)
            })
    }
}

enum Value {
    Str(String),
    Int(u32),
    Arr(Vec<String>),
}

impl Value {
    fn parse(s: &str) -> Result<Value, String> {
        if let Some(inner) = s.strip_prefix('"') {
            let inner = inner
                .strip_suffix('"')
                .ok_or("unterminated string".to_string())?;
            return Ok(Value::Str(inner.to_string()));
        }
        if let Some(inner) = s.strip_prefix('[') {
            let inner = inner
                .strip_suffix(']')
                .ok_or("unterminated array".to_string())?;
            let mut items = Vec::new();
            for item in split_top_level(inner) {
                let item = item.trim();
                if item.is_empty() {
                    continue;
                }
                match Value::parse(item)? {
                    Value::Str(s) => items.push(s),
                    _ => return Err("arrays may only hold strings".into()),
                }
            }
            return Ok(Value::Arr(items));
        }
        s.parse::<u32>()
            .map(Value::Int)
            .map_err(|_| format!("`{s}` is not a string, integer, or string array"))
    }

    fn into_string(self, lineno: usize) -> Result<String, String> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(format!("line {lineno}: expected a string")),
        }
    }

    fn into_int(self, lineno: usize) -> Result<u32, String> {
        match self {
            Value::Int(i) => Ok(i),
            _ => Err(format!("line {lineno}: expected an integer")),
        }
    }

    fn into_strings(self, lineno: usize) -> Result<Vec<String>, String> {
        match self {
            Value::Arr(v) => Ok(v),
            _ => Err(format!("line {lineno}: expected a string array")),
        }
    }
}

/// True when `[`/`]` outside quotes are balanced in `s`.
fn brackets_balance(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

/// Drops a trailing `# comment`, respecting `#` inside quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Splits an array body on commas that are not inside quotes.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut in_str = false;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

/// Glob matching with `*` (within a path segment) and `**` (any
/// number of segments). Paths use `/` separators.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    let pat: Vec<&str> = pattern.split('/').collect();
    let segs: Vec<&str> = path.split('/').collect();
    match_segments(&pat, &segs)
}

fn match_segments(pat: &[&str], segs: &[&str]) -> bool {
    match pat.first() {
        None => segs.is_empty(),
        Some(&"**") => {
            // `**` matches zero or more whole segments.
            (0..=segs.len()).any(|k| match_segments(&pat[1..], &segs[k..]))
        }
        Some(p) => match segs.first() {
            Some(s) if match_one(p, s) => match_segments(&pat[1..], &segs[1..]),
            _ => false,
        },
    }
}

/// `*` within a segment matches any run of non-separator characters.
fn match_one(pat: &str, seg: &str) -> bool {
    let p: Vec<char> = pat.chars().collect();
    let s: Vec<char> = seg.chars().collect();
    fn rec(p: &[char], s: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('*') => (0..=s.len()).any(|k| rec(&p[1..], &s[k..])),
            Some(c) => s.first() == Some(c) && rec(&p[1..], &s[1..]),
        }
    }
    rec(&p, &s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_schema() {
        let cfg = Config::parse(
            r#"
            # top comment
            exclude = ["a/**", "b/*.rs"]

            [rules.DSA-D001]
            paths = ["crates/core/src/dist/*.rs", "x.rs"]

            [unsafe]
            deny_ok = ["serve.rs"]

            [[lock]]
            name = "cache"
            rank = 40
            file = "svc.rs"
            field = "cache"

            [[external-lock]]
            name = "flight_ring"
            rank = 100

            [[assume]]
            call = "metrics.on_shed"
            locks = ["cache"]
            "#,
        )
        .expect("parse");
        assert_eq!(cfg.exclude.len(), 2);
        assert_eq!(cfg.rules["DSA-D001"].len(), 2);
        assert_eq!(cfg.deny_ok, ["serve.rs"]);
        assert_eq!(cfg.locks[0].rank, 40);
        assert_eq!(cfg.rank_of("flight_ring"), Some(100));
        assert_eq!(cfg.assumes[0].locks, ["cache"]);
    }

    #[test]
    fn rejects_unknown_keys_and_duplicate_locks() {
        assert!(Config::parse("[mystery]\n").is_err());
        assert!(Config::parse(
            "[[lock]]\nname = \"a\"\nrank = 1\nfile = \"f\"\nfield = \"x\"\nbogus = 3\n"
        )
        .is_err());
        let dup = "[[lock]]\nname = \"a\"\nrank = 1\nfile = \"f\"\nfield = \"x\"\n\
                   [[lock]]\nname = \"a\"\nrank = 2\nfile = \"g\"\nfield = \"y\"\n";
        assert!(Config::parse(dup).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn assume_must_reference_declared_locks() {
        let bad = "[[assume]]\ncall = \"x\"\nlocks = [\"ghost\"]\n";
        assert!(Config::parse(bad).unwrap_err().contains("ghost"));
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_match("crates/*/src/lib.rs", "crates/core/src/lib.rs"));
        assert!(!glob_match(
            "crates/*/src/lib.rs",
            "crates/core/src/bin/x.rs"
        ));
        assert!(glob_match("crates/**", "crates/a/b/c.rs"));
        assert!(glob_match(
            "**/fixtures/**",
            "crates/lint/tests/fixtures/w/x.rs"
        ));
        assert!(glob_match(
            "crates/core/src/dist/*.rs",
            "crates/core/src/dist/engine.rs"
        ));
        assert!(!glob_match(
            "crates/core/src/dist/*.rs",
            "crates/core/src/dist.rs"
        ));
        assert!(glob_match("src/lib.rs", "src/lib.rs"));
    }
}
