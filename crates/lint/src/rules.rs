//! The token-level rule series.
//!
//! | id | series | what it proves |
//! |---|---|---|
//! | DSA-D001 | determinism | no iteration over `HashMap`/`HashSet` (order is nondeterministic) unless the results are sorted in the same statement |
//! | DSA-D002 | determinism | no `Instant::now`/`SystemTime::now` (wall-clock values must not feed encoded output) |
//! | DSA-D003 | determinism | no ambient randomness (`thread_rng`, `OsRng`, ...) outside the seeded RNG |
//! | DSA-P001 | panic-freedom | no `.unwrap()` / `.expect(...)` in request paths |
//! | DSA-P002 | panic-freedom | no `panic!` / `unreachable!` / `todo!` / `unimplemented!` in request paths |
//! | DSA-P003 | panic-freedom | no panicking non-range indexing (`x[i]`) in request paths |
//! | DSA-C001 | cast safety | no narrowing `as` casts in decode paths — use `try_from` |
//! | DSA-U001 | memory safety | crate roots must carry `#![forbid(unsafe_code)]` |
//!
//! Every rule skips `#[cfg(test)]` regions: tests may unwrap, index,
//! and time things freely. All heuristics here are *token-level* —
//! no type information — so each rule documents its over- and
//! under-approximations inline; waivers absorb the deliberate
//! remainder.

use std::collections::BTreeSet;

use crate::lexer::{Kind, Lexed, Tok};
use crate::report::Finding;

/// Per-file context shared by the rules (and by the lock analysis).
pub struct FileCtx<'a> {
    pub path: &'a str,
    pub toks: &'a [Tok],
    /// Token-index ranges covered by `#[cfg(test)]` items.
    test_spans: Vec<(usize, usize)>,
}

impl<'a> FileCtx<'a> {
    pub fn new(path: &'a str, lexed: &'a Lexed) -> FileCtx<'a> {
        let toks = &lexed.tokens[..];
        FileCtx {
            path,
            toks,
            test_spans: cfg_test_spans(toks),
        }
    }

    /// True when token `i` is inside a `#[cfg(test)]` item.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= i && i < b)
    }
}

/// Finds the token span of every `#[cfg(test)]`-gated item: from the
/// `#` through the matching `}` of the item's body.
fn cfg_test_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_gate = toks[i].is('#')
            && toks[i + 1].is('[')
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is('(')
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is(')')
            && toks[i + 6].is(']');
        if !is_gate {
            i += 1;
            continue;
        }
        // The gated item runs to the matching close of its first `{`
        // (fn/mod/impl body) or to a `;` before any `{` (a gated
        // `use` or field — rare; treat the single statement as the
        // span).
        let start = i;
        let mut j = i + 7;
        let mut end = toks.len();
        while j < toks.len() {
            if toks[j].is(';') {
                end = j + 1;
                break;
            }
            if toks[j].is('{') {
                end = matching_close(toks, j).map_or(toks.len(), |k| k + 1);
                break;
            }
            j += 1;
        }
        spans.push((start, end));
        i = end.max(i + 1);
    }
    spans
}

/// Index of the `}` matching the `{` at `open`.
pub fn matching_close(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is('{') {
            depth += 1;
        } else if t.is('}') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

// ---------------------------------------------------------------- D001

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// DSA-D001: iteration over hash containers.
///
/// Tracking is name-based: an identifier counts as a hash container if
/// the file binds or declares it with a `HashMap`/`HashSet` type
/// (`let m: HashMap<..>`, `m = HashMap::new()`, struct field
/// `m: HashMap<..>`, fn param `m: &HashSet<..>`). Iterating such a
/// name — `m.iter()`, `m.keys()`, `for x in &m` — is a finding unless
/// the same statement also sorts (`sort`/`sort_unstable`/`sort_by*`)
/// or lands in a BTree collection, which restores a canonical order.
pub fn d001(ctx: &FileCtx) -> Vec<Finding> {
    let toks = ctx.toks;
    let mut hash_names: BTreeSet<&str> = BTreeSet::new();
    // Pass 1: collect names declared/bound with a hash type. Look for
    // `NAME : [&mut] HashX` and `NAME ... = HashX ::`.
    for i in 0..toks.len() {
        if toks[i].kind != Kind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        if HASH_TYPES.contains(&name) {
            continue;
        }
        // `NAME :` then a hash type within the next few tokens
        // (skipping `&`, `mut`, `Option <`, `Arc <` wrappers).
        if i + 1 < toks.len()
            && toks[i + 1].is(':')
            && !matches!(toks.get(i + 2), Some(t) if t.is(':'))
        {
            for t in toks.iter().skip(i + 2).take(8) {
                if t.is(';') || t.is(',') || t.is(')') || t.is('=') {
                    break;
                }
                if HASH_TYPES.contains(&t.text.as_str()) {
                    hash_names.insert(name);
                    break;
                }
            }
        }
        // `NAME = HashX ::` (also covers `let mut NAME = ...`).
        if i + 3 < toks.len()
            && toks[i + 1].is('=')
            && HASH_TYPES.contains(&toks[i + 2].text.as_str())
            && toks[i + 3].is(':')
        {
            hash_names.insert(name);
        }
    }
    // Pass 2: flag iteration over collected names.
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        if ctx.in_test(i) || toks[i].kind != Kind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        if !hash_names.contains(name) {
            continue;
        }
        // `NAME . method (`
        let method_hit = i + 3 < toks.len()
            && toks[i + 1].is('.')
            && ITER_METHODS.contains(&toks[i + 2].text.as_str())
            && toks[i + 3].is('(');
        // `for PAT in [&]NAME` — NAME preceded by `in` or `in &`.
        let for_hit = (i >= 1 && toks[i - 1].is_ident("in")
            || i >= 2 && toks[i - 2].is_ident("in") && toks[i - 1].is('&'))
            && !(i + 1 < toks.len() && (toks[i + 1].is('.') || toks[i + 1].is('(')));
        if !(method_hit || for_hit) {
            continue;
        }
        if statement_sorts(toks, i) {
            continue;
        }
        let how = if method_hit {
            format!("{name}.{}()", toks[i + 2].text)
        } else {
            format!("for .. in {name}")
        };
        findings.push(Finding::new(
            "DSA-D001",
            ctx.path,
            toks[i].line,
            format!(
                "iteration over hash container `{name}` ({how}): ordering is \
                 nondeterministic — sort the results, use a BTree collection, or waive"
            ),
        ));
    }
    findings
}

/// True when the iteration starting at token `i` restores a canonical
/// order: a `sort*` call or a BTree collection within the same
/// statement or the immediately following one (the idiomatic shape is
/// `let mut v: Vec<_> = m.keys().collect(); v.sort();`).
fn statement_sorts(toks: &[Tok], i: usize) -> bool {
    let mut depth = 0i32;
    let mut stmt_ends = 0;
    for t in toks.iter().skip(i) {
        if t.is('{') || t.is('(') || t.is('[') {
            depth += 1;
        } else if t.is('}') || t.is(')') || t.is(']') {
            depth -= 1;
            if depth < 0 {
                stmt_ends += 1;
                if stmt_ends >= 2 {
                    break;
                }
                depth = 0;
            }
        } else if t.is(';') && depth == 0 {
            stmt_ends += 1;
            if stmt_ends >= 2 {
                break;
            }
        }
        if t.kind == Kind::Ident && (t.text.starts_with("sort") || t.text.starts_with("BTree")) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------- D002

/// DSA-D002: wall-clock reads. Flags `Instant::now` and
/// `SystemTime::now`. Timing that demonstrably never reaches encoded
/// output is waived at the call site with a reason saying where the
/// value goes.
pub fn d002(ctx: &FileCtx) -> Vec<Finding> {
    let toks = ctx.toks;
    let mut findings = Vec::new();
    for i in 0..toks.len().saturating_sub(3) {
        if ctx.in_test(i) {
            continue;
        }
        let clock = toks[i].is_ident("Instant") || toks[i].is_ident("SystemTime");
        if clock && toks[i + 1].is(':') && toks[i + 2].is(':') && toks[i + 3].is_ident("now") {
            findings.push(Finding::new(
                "DSA-D002",
                ctx.path,
                toks[i].line,
                format!(
                    "`{}::now()` in a determinism-scoped file: wall-clock values must \
                     not influence encoded output",
                    toks[i].text
                ),
            ));
        }
    }
    findings
}

// ---------------------------------------------------------------- D003

const AMBIENT_RNG: [&str; 5] = [
    "thread_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "entropy",
];

/// DSA-D003: ambient (non-seeded) randomness. Every RNG in the
/// workspace must derive from an explicit seed; these names are the
/// standard escape hatches.
pub fn d003(ctx: &FileCtx) -> Vec<Finding> {
    let toks = ctx.toks;
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        if ctx.in_test(i) || toks[i].kind != Kind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        let hit = AMBIENT_RNG.contains(&name)
            // `rand :: random`
            || (name == "random" && i >= 3 && toks[i - 3].is_ident("rand") && toks[i - 2].is(':'));
        if hit {
            findings.push(Finding::new(
                "DSA-D003",
                ctx.path,
                toks[i].line,
                format!("ambient randomness `{name}`: all RNGs must derive from an explicit seed"),
            ));
        }
    }
    findings
}

// ---------------------------------------------------------------- P001

/// DSA-P001: `.unwrap()` / `.expect(` in request paths. Exact-name
/// match, so `unwrap_or_else` and friends pass.
pub fn p001(ctx: &FileCtx) -> Vec<Finding> {
    let toks = ctx.toks;
    let mut findings = Vec::new();
    for i in 2..toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        let m = &toks[i - 1];
        let is_call = toks[i].is('(') && toks[i - 2].is('.');
        if is_call && (m.is_ident("unwrap") || m.is_ident("expect")) {
            findings.push(Finding::new(
                "DSA-P001",
                ctx.path,
                m.line,
                format!(
                    ".{}() in a request path: return the error (`?`, match) — a panic \
                     here kills a worker serving live traffic",
                    m.text
                ),
            ));
        }
    }
    findings
}

// ---------------------------------------------------------------- P002

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// DSA-P002: panic macros in request paths.
pub fn p002(ctx: &FileCtx) -> Vec<Finding> {
    let toks = ctx.toks;
    let mut findings = Vec::new();
    for i in 0..toks.len().saturating_sub(1) {
        if ctx.in_test(i) {
            continue;
        }
        if PANIC_MACROS.contains(&toks[i].text.as_str())
            && toks[i].kind == Kind::Ident
            && toks[i + 1].is('!')
        {
            findings.push(Finding::new(
                "DSA-P002",
                ctx.path,
                toks[i].line,
                format!(
                    "`{}!` in a request path: encode the failure as an error response",
                    toks[i].text
                ),
            ));
        }
    }
    findings
}

// ---------------------------------------------------------------- P003

/// DSA-P003: panicking indexing in request paths.
///
/// Flags `expr[index]` where `expr` ends in an identifier, `)`, or
/// `]`, and the index is *not* a range (`[..k]`, `[a..]` slice
/// expressions are bounds-derived in this codebase and excluded to
/// keep the signal usable — a range that can panic still shows up in
/// review). Attribute brackets (`#[...]`) and array types/literals
/// are not preceded by those tokens and never match.
pub fn p003(ctx: &FileCtx) -> Vec<Finding> {
    let toks = ctx.toks;
    let mut findings = Vec::new();
    for i in 1..toks.len() {
        if ctx.in_test(i) || !toks[i].is('[') {
            continue;
        }
        let prev = &toks[i - 1];
        let indexes =
            prev.kind == Kind::Ident && !is_keyword(&prev.text) || prev.is(')') || prev.is(']');
        if !indexes {
            continue;
        }
        let Some(close) = matching_square(toks, i) else {
            continue;
        };
        let body = &toks[i + 1..close];
        if body.is_empty() || body.windows(2).any(|w| w[0].is('.') && w[1].is('.')) {
            continue; // `[]` can't panic here; ranges excluded by design
        }
        let idx: String = body
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join("");
        findings.push(Finding::new(
            "DSA-P003",
            ctx.path,
            toks[i].line,
            format!(
                "indexing `{}[{idx}]` can panic in a request path: use .get() or waive \
                 with the guard that makes it safe",
                prev.text
            ),
        ));
    }
    findings
}

fn matching_square(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is('[') {
            depth += 1;
        } else if t.is(']') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else" | "match" | "return" | "in" | "let" | "mut" | "ref" | "move" | "break"
    )
}

// ---------------------------------------------------------------- C001

const NARROW_TARGETS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];
const SMALL_SOURCES: [&str; 3] = ["u8", "u16", "u32"];

/// DSA-C001: narrowing `as` casts in decode paths.
///
/// Flags `expr as T` for integer `T` narrower than `u64`. Suppressed
/// when the expression's recent tokens mention a source type that
/// makes the cast widening on every supported (64-bit) target —
/// `u32::from_be_bytes(b) as usize` and `r.u32()? as usize` pass,
/// `r.u64()? as usize` does not. `as u64`/`as u128`/float casts are
/// never narrowing from this codebase's sources and are not flagged.
pub fn c001(ctx: &FileCtx) -> Vec<Finding> {
    let toks = ctx.toks;
    let mut findings = Vec::new();
    for i in 0..toks.len().saturating_sub(1) {
        if ctx.in_test(i) || !toks[i].is_ident("as") {
            continue;
        }
        let target = toks[i + 1].text.as_str();
        if !NARROW_TARGETS.contains(&target) {
            continue;
        }
        // Widening suppression: scan back across the source expression
        // (bounded, stopping at statement-ish boundaries) for a small
        // source type when the target is at least as wide.
        let target_wide_enough = |src: &str| match target {
            "usize" | "isize" | "i64" => true, // u32/u16/u8 all fit
            "u32" | "i32" => src == "u16" || src == "u8",
            "u16" | "i16" => src == "u8",
            _ => false,
        };
        let mut widening = false;
        for k in (i.saturating_sub(14)..i).rev() {
            let t = &toks[k];
            if t.is(';') || t.is('{') || t.is('=') || t.is(',') {
                break;
            }
            if SMALL_SOURCES.contains(&t.text.as_str()) && target_wide_enough(&t.text) {
                widening = true;
                break;
            }
        }
        if widening {
            continue;
        }
        findings.push(Finding::new(
            "DSA-C001",
            ctx.path,
            toks[i].line,
            format!(
                "narrowing `as {target}` in a decode path: silently truncates \
                 out-of-range input — use `try_from` and map the error"
            ),
        ));
    }
    findings
}

// ---------------------------------------------------------------- U001

/// DSA-U001: crate roots must open with `#![forbid(unsafe_code)]`.
/// Files listed in `[unsafe] deny_ok` may use `#![deny(unsafe_code)]`
/// instead (needed when a crate has exactly one audited, explicitly
/// `#[allow]`ed unsafe block, e.g. a hand-declared libc FFI).
pub fn u001(ctx: &FileCtx, deny_ok: bool) -> Vec<Finding> {
    let toks = ctx.toks;
    // Scan the leading inner attributes: `# ! [ level ( unsafe_code ) ]`.
    let mut i = 0;
    while i + 6 < toks.len() {
        if !(toks[i].is('#') && toks[i + 1].is('!') && toks[i + 2].is('[')) {
            break;
        }
        let Some(close) = matching_square(toks, i + 2) else {
            break;
        };
        let level = &toks[i + 3];
        let target = toks.get(i + 5);
        let names_unsafe = toks[i + 4].is('(') && target.is_some_and(|t| t.is_ident("unsafe_code"));
        if names_unsafe && (level.is_ident("forbid") || (deny_ok && level.is_ident("deny"))) {
            return Vec::new();
        }
        i = close + 1;
    }
    let want = if deny_ok {
        "#![forbid(unsafe_code)] or #![deny(unsafe_code)]"
    } else {
        "#![forbid(unsafe_code)]"
    };
    vec![Finding::new(
        "DSA-U001",
        ctx.path,
        1,
        format!("crate root missing {want}"),
    )]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn run(rule: fn(&FileCtx) -> Vec<Finding>, src: &str) -> Vec<Finding> {
        let lexed = lexer::lex(src);
        let ctx = FileCtx::new("t.rs", &lexed);
        rule(&ctx)
    }

    #[test]
    fn d001_flags_iteration_not_membership() {
        let src = "fn f() { let mut m = HashMap::new(); m.insert(1, 2); \
                   for (k, v) in &m { use_it(k, v); } let n = m.keys().count(); }";
        let f = run(d001, src);
        assert_eq!(f.len(), 2);
        let src2 = "fn f(s: &HashSet<u32>) { if s.contains(&3) { hit(); } }";
        assert!(run(d001, src2).is_empty());
    }

    #[test]
    fn d001_sorted_statement_suppresses() {
        let src = "fn f(m: HashMap<u32, u32>) { \
                   let mut v: Vec<_> = m.keys().copied().collect(); v.sort(); }";
        assert!(run(d001, src).is_empty());
        let chained = "fn f(m: HashMap<u32, u32>) { \
                       let v = { let mut v: Vec<_> = m.keys().collect(); v.sort_unstable(); v }; }";
        assert!(run(d001, chained).is_empty());
        // A sort two or more statements away does not count.
        let far = "fn f(m: HashMap<u32, u32>) { \
                   let mut v: Vec<_> = m.keys().collect(); other(); v.sort(); }";
        assert_eq!(run(d001, far).len(), 1);
    }

    #[test]
    fn d002_flags_clocks_outside_tests() {
        let src = "fn f() { let t = Instant::now(); }\n\
                   #[cfg(test)] mod tests { fn g() { let t = Instant::now(); } }";
        let f = run(d002, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn p001_exact_method_names_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or_default(); x.unwrap_or(3); \
                   x.expect(\"boom\") }";
        let f = run(p001, src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("expect"));
    }

    #[test]
    fn p002_macros() {
        let f = run(
            p002,
            "fn f() { if bad { panic!(\"no\") } else { unreachable!() } }",
        );
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn p003_ranges_and_attributes_excluded() {
        let src = "#[derive(Debug)]\nfn f(v: &[u8], k: usize) { let a = v[0]; \
                   let b = &v[..k]; let c = v[k..]; let t: [u8; 4] = [0; 4]; }";
        let f = run(p003, src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("v[0]"));
    }

    #[test]
    fn c001_narrowing_vs_widening() {
        let src = "fn f(x: u64, r: &mut R) { let a = x as usize; \
                   let b = u32::from_be_bytes(buf) as usize; \
                   let c = r.u32()? as usize; let d = x as u64; }";
        let f = run(c001, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn u001_levels() {
        let forbid = lexer::lex("#![forbid(unsafe_code)]\nfn main() {}");
        let deny = lexer::lex("#![deny(unsafe_code)]\nfn main() {}");
        let nothing = lexer::lex("//! docs\nfn main() {}");
        assert!(u001(&FileCtx::new("a.rs", &forbid), false).is_empty());
        assert_eq!(u001(&FileCtx::new("b.rs", &deny), false).len(), 1);
        assert!(u001(&FileCtx::new("b.rs", &deny), true).is_empty());
        assert_eq!(u001(&FileCtx::new("c.rs", &nothing), true).len(), 1);
    }

    #[test]
    fn cfg_test_spans_cover_mods_and_fns() {
        let lexed = lexer::lex(
            "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n",
        );
        let ctx = FileCtx::new("t.rs", &lexed);
        let f = p001(&ctx);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }
}
