//! dsa-lint: the workspace invariant analyzer.
//!
//! The repo's three serving contracts — deterministic output,
//! panic-free request paths, deadlock-free locking — are documented
//! prose until something checks them. This crate is that check: a
//! dependency-free static analyzer (its own lexer, its own config
//! parser — the build is offline) that runs as `cargo run -p
//! dsa-lint` locally and as a CI gate.
//!
//! * Rules and their IDs: see [`rules`] (token-level D/P/C/U series)
//!   and [`locks`] (the L series over the declared lock inventory).
//! * Configuration: `lint.toml` at the workspace root, see [`config`].
//! * Waivers: `// dsa-lint: allow(RULE-ID, reason="...")`, see
//!   [`report`] — unused waivers are themselves findings, so the
//!   waiver set can only shrink.
//!
//! The library entry point is [`run`]; the binary in `main.rs` is a
//! thin CLI over it, and the golden tests in `tests/` drive the same
//! API against a fixture corpus.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod locks;
pub mod report;
pub mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use config::{glob_match, Config};
use report::{Finding, Waiver};
use rules::FileCtx;

/// What to analyze.
pub struct Options {
    /// Workspace root; all config globs and reported paths are
    /// relative to it.
    pub root: PathBuf,
    /// The configuration (usually parsed from `<root>/lint.toml`).
    pub config: Config,
}

/// The analysis result: surviving findings, sorted by (file, line,
/// rule), plus the number of files scanned (for reporting).
pub struct Outcome {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

/// Runs every configured rule over the tree under `opts.root`.
pub fn run(opts: &Options) -> Result<Outcome, String> {
    let cfg = &opts.config;
    let mut paths = Vec::new();
    walk(&opts.root, &opts.root, cfg, &mut paths)?;
    paths.sort();

    // Lex everything once.
    let mut lexed: BTreeMap<String, lexer::Lexed> = BTreeMap::new();
    for rel in &paths {
        let src =
            std::fs::read_to_string(opts.root.join(rel)).map_err(|e| format!("read {rel}: {e}"))?;
        lexed.insert(rel.clone(), lexer::lex(&src));
    }

    let mut findings: Vec<Finding> = Vec::new();
    let mut waivers: Vec<Waiver> = Vec::new();

    // Waivers live anywhere in the scanned tree; parse them all up
    // front so a waiver in an unscoped file is reported as unused
    // rather than silently ignored.
    for (rel, lx) in &lexed {
        let code_lines: std::collections::BTreeSet<u32> =
            lx.tokens.iter().map(|t| t.line).collect();
        let max_line = lx
            .tokens
            .last()
            .map(|t| t.line)
            .max(lx.comments.last().map(|c| c.line))
            .unwrap_or(1);
        let (mut w, mut bad) =
            report::parse_waivers(rel, &lx.comments, |l| code_lines.contains(&l), max_line);
        waivers.append(&mut w);
        findings.append(&mut bad);
    }

    // Token rules, per configured scope.
    type RuleFn = fn(&FileCtx) -> Vec<Finding>;
    let token_rules: [(&str, RuleFn); 7] = [
        ("DSA-D001", rules::d001),
        ("DSA-D002", rules::d002),
        ("DSA-D003", rules::d003),
        ("DSA-P001", rules::p001),
        ("DSA-P002", rules::p002),
        ("DSA-P003", rules::p003),
        ("DSA-C001", rules::c001),
    ];
    for (id, rule) in token_rules {
        let Some(globs) = cfg.rules.get(id) else {
            continue;
        };
        for (rel, lx) in &lexed {
            if globs.iter().any(|g| glob_match(g, rel)) {
                let ctx = FileCtx::new(rel, lx);
                findings.extend(rule(&ctx));
            }
        }
    }

    // DSA-U001 (crate roots), with its deny_ok escape hatch.
    if let Some(globs) = cfg.rules.get("DSA-U001") {
        for (rel, lx) in &lexed {
            if globs.iter().any(|g| glob_match(g, rel)) {
                let ctx = FileCtx::new(rel, lx);
                let deny_ok = cfg.deny_ok.iter().any(|f| f == rel);
                findings.extend(rules::u001(&ctx, deny_ok));
            }
        }
    }

    // L series over the lock inventory's files.
    if !cfg.locks.is_empty() {
        let mut lock_files: BTreeMap<String, &lexer::Lexed> = BTreeMap::new();
        for decl in &cfg.locks {
            match lexed.get(&decl.file) {
                Some(lx) => {
                    lock_files.insert(decl.file.clone(), lx);
                }
                None => {
                    return Err(format!(
                        "lint.toml declares lock `{}` in `{}`, which was not found under the root",
                        decl.name, decl.file
                    ))
                }
            }
        }
        findings.extend(locks::analyze(cfg, &lock_files));
    }

    let mut findings = report::apply_waivers(findings, &mut waivers);
    findings.extend(report::unused_waiver_findings(&waivers));
    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    findings.dedup();
    Ok(Outcome {
        findings,
        files_scanned: lexed.len(),
    })
}

/// Collects repo-relative `.rs` paths under `dir`, honoring
/// `cfg.exclude` and skipping build/VCS directories.
fn walk(root: &Path, dir: &Path, cfg: &Config, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name == "target" || name.starts_with('.') {
            continue;
        }
        let rel = path
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        if cfg.exclude.iter().any(|g| glob_match(g, &rel)) {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, cfg, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}
