//! `dsa-lint` — CLI for the workspace invariant analyzer.
//!
//! ```text
//! cargo run -p dsa-lint [-- --root DIR] [--config FILE] [--json FILE]
//! ```
//!
//! Exit codes: `0` clean, `1` findings (printed one per line as
//! `path:line: RULE message`), `2` usage or configuration error.
//! `--json FILE` additionally writes the findings as a JSON array
//! (`-` for stdout) — the artifact CI uploads.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use dsa_lint::{config::Config, report, run, Options};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut json_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--config" => config_path = args.next().map(PathBuf::from),
            "--json" => json_out = args.next(),
            "--help" | "-h" => {
                println!("usage: dsa-lint [--root DIR] [--config FILE] [--json FILE|-]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dsa-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    // Default root: the nearest ancestor of the current directory
    // holding a lint.toml (so the tool works from any crate dir).
    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("dsa-lint: no lint.toml found here or above; pass --root");
            return ExitCode::from(2);
        }
    };
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config_src = match std::fs::read_to_string(&config_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dsa-lint: read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let config = match Config::parse(&config_src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dsa-lint: {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };

    let outcome = match run(&Options { root, config }) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("dsa-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(dest) = json_out {
        let json = report::to_json(&outcome.findings);
        if dest == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(&dest, json) {
            eprintln!("dsa-lint: write {dest}: {e}");
            return ExitCode::from(2);
        }
    }

    if outcome.findings.is_empty() {
        eprintln!(
            "dsa-lint: {} files scanned, no findings",
            outcome.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        print!("{}", report::to_text(&outcome.findings));
        eprintln!(
            "dsa-lint: {} finding(s) across {} files scanned",
            outcome.findings.len(),
            outcome.files_scanned
        );
        ExitCode::from(1)
    }
}

/// Nearest ancestor (including cwd) containing a `lint.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
