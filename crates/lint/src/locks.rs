//! The L-series: static lock-order analysis over the declared
//! inventory.
//!
//! The workspace's deadlock-freedom argument is a *total order*: every
//! `OrderedMutex` carries a rank, and no thread acquires a lock whose
//! rank is ≤ any lock it holds. `dsa_runtime::sync` enforces this
//! dynamically on tested paths; this module proves it statically for
//! the whole acquisition graph:
//!
//! | id | what it checks |
//! |---|---|
//! | DSA-L001 | the acquisition graph (lock held → lock taken) is acyclic |
//! | DSA-L002 | every acquisition edge goes strictly *up* in rank |
//! | DSA-L003 | `OrderedMutex::new("name", rank, ..)` literals match the inventory in `lint.toml` |
//!
//! The analysis is token-level and deliberately modest:
//!
//! * An **acquisition site** is `<field>.lock()` where `field` is a
//!   declared lock field for the file. A let-bound guard lives to the
//!   end of its block (or `drop(guard)`); a temporary lives to the end
//!   of its statement. Both approximations round *up* — a guard never
//!   dies early, so the analysis can report a spurious edge but not
//!   miss a real one.
//! * **Calls** made while holding a lock propagate: the callee's lock
//!   closure (every lock it can acquire, transitively) becomes edges
//!   from each held lock. Only calls the lexer can resolve are
//!   followed — `self.method(...)`, `Self::assoc(...)`, and bare
//!   `free_fn(...)` within the analyzed file set. Calls through other
//!   receivers are invisible to the analysis and must be declared in
//!   `lint.toml` as `[[assume]]` entries (`call = "recv.method"`),
//!   which is exactly the explicitness the contract wants: every
//!   cross-component lock dependency is written down.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::lexer::{Kind, Lexed, Tok};
use crate::report::Finding;
use crate::rules::{matching_close, FileCtx};

/// An acquisition edge: while holding `from`, `to` is (possibly
/// transitively) acquired at `file:line`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: u32,
    via: String,
}

/// Runs the whole L series over `files` (path -> lexed source).
pub fn analyze(cfg: &Config, files: &BTreeMap<String, &Lexed>) -> Vec<Finding> {
    let mut findings = check_construction_sites(cfg, files);

    // field name -> lock name, per file.
    let mut field_map: BTreeMap<&str, BTreeMap<&str, &str>> = BTreeMap::new();
    for l in &cfg.locks {
        field_map
            .entry(l.file.as_str())
            .or_default()
            .insert(l.field.as_str(), l.name.as_str());
    }

    // Pass 1: per-function facts across the file set.
    let mut fns: BTreeMap<String, FnFacts> = BTreeMap::new();
    for (path, lexed) in files {
        let ctx = FileCtx::new(path, lexed);
        let fields = field_map.get(path.as_str()).cloned().unwrap_or_default();
        collect_functions(&ctx, &fields, cfg, &mut fns);
    }

    // Pass 2: transitive lock closure per function (fixed point).
    let closures = compute_closures(&fns);

    // Pass 3: edges.
    let mut edges: BTreeSet<Edge> = BTreeSet::new();
    for facts in fns.values() {
        for acq in &facts.events {
            match acq {
                Event::Acquire {
                    held,
                    lock,
                    file,
                    line,
                } => {
                    for h in held {
                        edges.insert(Edge {
                            from: h.clone(),
                            to: lock.clone(),
                            file: file.clone(),
                            line: *line,
                            via: "direct".into(),
                        });
                    }
                }
                Event::Call {
                    held,
                    callee,
                    file,
                    line,
                } => {
                    if held.is_empty() {
                        continue;
                    }
                    let mut acquired: BTreeSet<&String> = BTreeSet::new();
                    match callee {
                        Callee::Fn(name) => {
                            if let Some(c) = closures.get(name) {
                                acquired.extend(c);
                            }
                        }
                        Callee::Assume(locks) => acquired.extend(locks.iter()),
                    }
                    for to in acquired {
                        for h in held {
                            if h != to {
                                edges.insert(Edge {
                                    from: h.clone(),
                                    to: (*to).clone(),
                                    file: file.clone(),
                                    line: *line,
                                    via: callee.describe(),
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    // L002: every edge must go strictly up in rank. Report each
    // (from, to) pair once, at its first site.
    let mut seen_pairs: BTreeSet<(String, String)> = BTreeSet::new();
    for e in &edges {
        let (Some(rf), Some(rt)) = (cfg.rank_of(&e.from), cfg.rank_of(&e.to)) else {
            continue;
        };
        if rt <= rf && seen_pairs.insert((e.from.clone(), e.to.clone())) {
            findings.push(Finding::new(
                "DSA-L002",
                &e.file,
                e.line,
                format!(
                    "lock order violated: `{}` (rank {rt}) acquired {} while holding \
                     `{}` (rank {rf}) — ranks must strictly increase",
                    e.to,
                    if e.via == "direct" {
                        "directly".to_string()
                    } else {
                        format!("via {}", e.via)
                    },
                    e.from,
                ),
            ));
        }
    }

    // L001: cycles. With a consistent rank assignment L002 subsumes
    // this, but L001 also catches graphs whose ranks were edited into
    // agreement with a cycle (two violations that "cancel out").
    for cycle in find_cycles(&edges) {
        let site = edges
            .iter()
            .find(|e| e.from == cycle[0] && e.to == cycle[1 % cycle.len()]);
        let (file, line) = site.map_or(("lint.toml".to_string(), 0), |e| (e.file.clone(), e.line));
        findings.push(Finding::new(
            "DSA-L001",
            &file,
            line,
            format!(
                "lock acquisition cycle: {} -> {} — some path acquires these in both \
                 orders, which deadlocks under contention",
                cycle.join(" -> "),
                cycle[0]
            ),
        ));
    }
    findings
}

/// DSA-L003: every `OrderedMutex::new("name", rank, ...)` literal must
/// match the inventory — and every non-external inventory entry must
/// be constructed somewhere in its declared file.
fn check_construction_sites(cfg: &Config, files: &BTreeMap<String, &Lexed>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut constructed: BTreeSet<&str> = BTreeSet::new();
    for (path, lexed) in files {
        let toks = &lexed.tokens;
        for i in 0..toks.len().saturating_sub(6) {
            // OrderedMutex :: new ( "name" , rank
            if !(toks[i].is_ident("OrderedMutex")
                && toks[i + 1].is(':')
                && toks[i + 2].is(':')
                && toks[i + 3].is_ident("new")
                && toks[i + 4].is('('))
            {
                continue;
            }
            let line = toks[i].line;
            let name_tok = &toks[i + 5];
            let (Kind::Literal, Some(name)) = (name_tok.kind, unquote(&name_tok.text)) else {
                findings.push(Finding::new(
                    "DSA-L003",
                    path,
                    line,
                    "OrderedMutex::new must be called with a string-literal name \
                     (the lint matches it against the inventory in lint.toml)",
                ));
                continue;
            };
            let rank: Option<u32> = toks
                .get(i + 7)
                .filter(|t| t.kind == Kind::Num)
                .and_then(|t| t.text.replace('_', "").parse().ok());
            let Some(decl) = cfg.locks.iter().find(|l| l.name == name) else {
                findings.push(Finding::new(
                    "DSA-L003",
                    path,
                    line,
                    format!(
                        "lock `{name}` is not in the lint.toml inventory — declare it with a rank"
                    ),
                ));
                continue;
            };
            constructed.insert(decl.name.as_str());
            if rank != Some(decl.rank) {
                findings.push(Finding::new(
                    "DSA-L003",
                    path,
                    line,
                    format!(
                        "lock `{name}` constructed with rank {} but lint.toml declares rank {} — \
                         the code and the inventory must agree",
                        rank.map_or("<non-literal>".to_string(), |r| r.to_string()),
                        decl.rank
                    ),
                ));
            }
            if decl.file != *path {
                findings.push(Finding::new(
                    "DSA-L003",
                    path,
                    line,
                    format!(
                        "lock `{name}` constructed here but declared for `{}`",
                        decl.file
                    ),
                ));
            }
        }
    }
    for decl in &cfg.locks {
        if !constructed.contains(decl.name.as_str()) {
            findings.push(Finding::new(
                "DSA-L003",
                &decl.file,
                1,
                format!(
                    "inventory lock `{}` has no OrderedMutex::new construction site in this \
                     file — remove the entry or mark it [[external-lock]]",
                    decl.name
                ),
            ));
        }
    }
    findings
}

fn unquote(s: &str) -> Option<String> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
}

#[derive(Debug, Clone)]
enum Callee {
    Fn(String),
    Assume(Vec<String>),
}

impl Callee {
    fn describe(&self) -> String {
        match self {
            Callee::Fn(n) => format!("call to `{n}`"),
            Callee::Assume(_) => "an assumed call (see [[assume]] in lint.toml)".to_string(),
        }
    }
}

#[derive(Debug)]
enum Event {
    Acquire {
        held: Vec<String>,
        lock: String,
        file: String,
        line: u32,
    },
    Call {
        held: Vec<String>,
        callee: Callee,
        file: String,
        line: u32,
    },
}

#[derive(Debug, Default)]
struct FnFacts {
    /// Locks acquired anywhere in the body (for the closure).
    acquires: BTreeSet<String>,
    /// Resolved callees (for the transitive closure).
    calls: BTreeSet<String>,
    /// Assumed locks at call sites (join into the closure).
    assumed: BTreeSet<String>,
    /// Ordered acquisition/call events with the held-set at each.
    events: Vec<Event>,
}

/// How a live guard dies.
#[derive(Debug)]
enum Until {
    /// Let-bound: the enclosing block closes (depth falls below) or
    /// `drop(name)` runs.
    BlockEnd { depth: i32, name: String },
    /// Temporary: the statement ends (`;` at or below the depth).
    Stmt { depth: i32 },
}

struct Guard {
    lock: String,
    until: Until,
}

/// Scans every `fn` in the file, recording acquisition and call
/// events with the live lock set, into `fns` (merged by function name
/// — a name collision conservatively unions the facts).
fn collect_functions(
    ctx: &FileCtx,
    fields: &BTreeMap<&str, &str>,
    cfg: &Config,
    fns: &mut BTreeMap<String, FnFacts>,
) {
    let toks = ctx.toks;
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_ident("fn") && toks.get(i + 1).map(|t| t.kind) == Some(Kind::Ident)) {
            i += 1;
            continue;
        }
        if ctx.in_test(i) {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        // Body: first `{` at paren-depth 0 after the signature.
        let mut j = i + 2;
        let mut paren = 0i32;
        let mut open = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is('(') {
                paren += 1;
            } else if t.is(')') {
                paren -= 1;
            } else if t.is('{') && paren == 0 {
                open = Some(j);
                break;
            } else if t.is(';') && paren == 0 {
                break; // trait method declaration, no body
            }
            j += 1;
        }
        let Some(open) = open else {
            i += 2;
            continue;
        };
        let close = matching_close(toks, open).unwrap_or(toks.len());
        let facts = fns.entry(name).or_default();
        scan_body(ctx, &toks[open..close], toks[open].line, fields, cfg, facts);
        i = close + 1;
    }
}

/// Walks one function body, tracking live guards and emitting events.
/// `body` starts at the opening `{`.
///
/// `move` closures run detached from the current thread's lock state
/// (worker jobs, spawned threads), so their bodies are scanned as
/// separate anonymous functions with an empty held set — and their
/// acquisitions do *not* join the enclosing function's closure, since
/// the enclosing call does not synchronously take those locks.
fn scan_body(
    ctx: &FileCtx,
    body: &[Tok],
    _start_line: u32,
    fields: &BTreeMap<&str, &str>,
    cfg: &Config,
    facts: &mut FnFacts,
) {
    let mut depth = 0i32;
    let mut guards: Vec<Guard> = Vec::new();
    let file = ctx.path.to_string();

    let held = |guards: &[Guard]| -> Vec<String> {
        let mut v: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
        v.dedup();
        v
    };

    let mut k = 0usize;
    while k < body.len() {
        let t = &body[k];

        // `move |args| { ... }`: detach the block.
        if t.is_ident("move") && body.get(k + 1).is_some_and(|t| t.is('|')) {
            let mut j = k + 2;
            while j < body.len() && !body[j].is('|') {
                j += 1;
            }
            if let Some(open) = body.get(j + 1).filter(|t| t.is('{')).map(|_| j + 1) {
                if let Some(close) = crate::rules::matching_close(body, open) {
                    let mut detached = FnFacts::default();
                    scan_body(
                        ctx,
                        &body[open..close],
                        body[open].line,
                        fields,
                        cfg,
                        &mut detached,
                    );
                    facts.events.extend(detached.events);
                    k = close + 1;
                    continue;
                }
            }
        }

        if t.is('{') {
            depth += 1;
        } else if t.is('}') {
            depth -= 1;
            guards.retain(|g| match &g.until {
                Until::BlockEnd { depth: d, .. } => depth >= *d,
                Until::Stmt { depth: d } => depth >= *d,
            });
        } else if t.is(';') {
            guards.retain(|g| !matches!(&g.until, Until::Stmt { depth: d } if depth <= *d));
        }

        // drop(NAME) ends a let-bound guard.
        if t.is_ident("drop")
            && body.get(k + 1).is_some_and(|t| t.is('('))
            && body.get(k + 3).is_some_and(|t| t.is(')'))
        {
            if let Some(victim) = body.get(k + 2) {
                guards.retain(
                    |g| !matches!(&g.until, Until::BlockEnd { name, .. } if *name == victim.text),
                );
            }
        }

        // Acquisition: FIELD . lock ( )
        if t.kind == Kind::Ident
            && body.get(k + 1).is_some_and(|t| t.is('.'))
            && body.get(k + 2).is_some_and(|t| t.is_ident("lock"))
            && body.get(k + 3).is_some_and(|t| t.is('('))
        {
            if let Some(lock) = fields.get(t.text.as_str()) {
                let lock = lock.to_string();
                facts.events.push(Event::Acquire {
                    held: held(&guards),
                    lock: lock.clone(),
                    file: file.clone(),
                    line: t.line,
                });
                facts.acquires.insert(lock.clone());
                // Binding form: scan back to the statement start.
                let until = binding_of(body, k, depth);
                let until = match until {
                    // `let g = x.lock().more()` binds the *result of
                    // the chain*, not the guard: if anything follows
                    // the `lock()` call, the guard is a temporary.
                    Until::BlockEnd { depth, .. } if !body.get(k + 5).is_none_or(|t| t.is(';')) => {
                        Until::Stmt { depth }
                    }
                    u => u,
                };
                guards.push(Guard { lock, until });
                k += 4;
                continue;
            }
        }

        // Call site: IDENT (  — classified by what precedes it.
        if t.kind == Kind::Ident && body.get(k + 1).is_some_and(|t| t.is('(')) && !is_ctrl(&t.text)
        {
            let callee = classify_call(body, k, cfg);
            if let Some(callee) = callee {
                match &callee {
                    Callee::Fn(n) => {
                        facts.calls.insert(n.clone());
                    }
                    Callee::Assume(locks) => {
                        facts.assumed.extend(locks.iter().cloned());
                    }
                }
                facts.events.push(Event::Call {
                    held: held(&guards),
                    callee,
                    file: file.clone(),
                    line: t.line,
                });
            }
        }
        k += 1;
    }
}

/// Whether the acquisition at token `k` is let-bound, and to what.
fn binding_of(body: &[Tok], k: usize, depth: i32) -> Until {
    // Walk back to the nearest statement boundary.
    let mut s = k;
    while s > 0 {
        let t = &body[s - 1];
        if t.is(';') || t.is('{') || t.is('}') {
            break;
        }
        s -= 1;
    }
    if body.get(s).is_some_and(|t| t.is_ident("let")) {
        let mut n = s + 1;
        if body.get(n).is_some_and(|t| t.is_ident("mut")) {
            n += 1;
        }
        if let Some(name_tok) = body.get(n).filter(|t| t.kind == Kind::Ident) {
            // `let copy = *x.lock();` / `let r = &x.lock().field;` bind
            // a value copied out of the guard, not the guard: the
            // temporary guard dies at the semicolon.
            let derefs = body.get(n + 1).is_some_and(|t| {
                t.is('=') && body.get(n + 2).is_some_and(|t| t.is('*') || t.is('&'))
            });
            if !derefs {
                return Until::BlockEnd {
                    depth,
                    name: name_tok.text.clone(),
                };
            }
        }
    }
    Until::Stmt { depth }
}

/// Resolves a call site to something the analysis can follow.
///
/// * `self.NAME(` / `Self::NAME(` / bare `NAME(` -> [`Callee::Fn`]
///   (resolved against the scanned function set later; unknown names
///   simply have an empty closure).
/// * `recv.NAME(` with `recv.NAME` in `[[assume]]` -> [`Callee::Assume`].
/// * anything else -> `None` (invisible to the analysis).
fn classify_call(body: &[Tok], k: usize, cfg: &Config) -> Option<Callee> {
    let name = body[k].text.as_str();
    let prev = k.checked_sub(1).map(|i| &body[i]);
    let prev2 = k.checked_sub(2).map(|i| &body[i]);
    let prev3 = k.checked_sub(3).map(|i| &body[i]);
    match (prev3, prev2, prev) {
        // self . NAME (
        (_, Some(p2), Some(p1)) if p1.is('.') && p2.is_ident("self") => {
            Some(Callee::Fn(name.to_string()))
        }
        // Self : : NAME (
        (Some(p3), Some(p2), Some(p1)) if p1.is(':') && p2.is(':') && p3.is_ident("Self") => {
            Some(Callee::Fn(name.to_string()))
        }
        // recv . NAME (  — assume table lookup; `recv.*` declares a
        // blanket assumption for every method on that receiver.
        (_, Some(p2), Some(p1)) if p1.is('.') && p2.kind == Kind::Ident => {
            let key = format!("{}.{name}", p2.text);
            let blanket = format!("{}.*", p2.text);
            cfg.assumes
                .iter()
                .find(|a| a.call == key || a.call == blanket)
                .map(|a| Callee::Assume(a.locks.clone()))
        }
        // A path call `mod::NAME(` — not followed (cross-crate).
        (_, Some(p2), Some(p1)) if p1.is(':') && p2.is(':') => None,
        // Bare NAME( — free function or assumed.
        (_, _, Some(p1)) if !p1.is('.') => {
            if let Some(a) = cfg.assumes.iter().find(|a| a.call == name) {
                return Some(Callee::Assume(a.locks.clone()));
            }
            Some(Callee::Fn(name.to_string()))
        }
        _ => None,
    }
}

/// Control-flow keywords that look like calls at the token level.
fn is_ctrl(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "move"
            | "fn"
            | "impl"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
            | "Box"
            | "Vec"
            | "vec"
            | "format"
            | "write"
            | "writeln"
            | "println"
            | "eprintln"
            | "assert"
            | "assert_eq"
            | "assert_ne"
            | "debug_assert"
    )
}

/// Per-function transitive lock closure (fixed point over the call
/// graph; unresolved callees contribute nothing).
fn compute_closures(fns: &BTreeMap<String, FnFacts>) -> BTreeMap<String, BTreeSet<String>> {
    let mut closures: BTreeMap<String, BTreeSet<String>> = fns
        .iter()
        .map(|(name, f)| {
            let mut s = f.acquires.clone();
            s.extend(f.assumed.iter().cloned());
            (name.clone(), s)
        })
        .collect();
    loop {
        let mut changed = false;
        for (name, f) in fns {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for callee in &f.calls {
                if callee == name {
                    continue;
                }
                if let Some(c) = closures.get(callee) {
                    add.extend(c.iter().cloned());
                }
            }
            let mine = closures.entry(name.clone()).or_default();
            let before = mine.len();
            mine.extend(add);
            changed |= mine.len() != before;
        }
        if !changed {
            return closures;
        }
    }
}

/// Finds elementary cycles (as lock-name paths) in the edge set.
/// Reports each cycle once, rotated to start at its smallest node.
fn find_cycles(edges: &BTreeSet<Edge>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut path: Vec<&str> = vec![start];
        let mut on_path: BTreeSet<&str> = [start].into();
        dfs(start, start, &adj, &mut path, &mut on_path, &mut cycles);
    }
    cycles.into_iter().collect()
}

fn dfs<'a>(
    node: &'a str,
    start: &'a str,
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    path: &mut Vec<&'a str>,
    on_path: &mut BTreeSet<&'a str>,
    cycles: &mut BTreeSet<Vec<String>>,
) {
    let Some(nexts) = adj.get(node) else { return };
    for &next in nexts {
        if next == start {
            // Canonicalize: rotate so the smallest name leads.
            let min = path
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| **s)
                .map_or(0, |(i, _)| i);
            let rotated: Vec<String> = path[min..]
                .iter()
                .chain(path[..min].iter())
                .map(|s| s.to_string())
                .collect();
            cycles.insert(rotated);
        } else if !on_path.contains(next) {
            path.push(next);
            on_path.insert(next);
            dfs(next, start, adj, path, on_path, cycles);
            path.pop();
            on_path.remove(next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn cfg_two_locks() -> Config {
        Config::parse(
            r#"
            [[lock]]
            name = "a"
            rank = 10
            file = "m.rs"
            field = "a"
            [[lock]]
            name = "b"
            rank = 20
            file = "m.rs"
            field = "b"
            "#,
        )
        .expect("config")
    }

    fn run(cfg: &Config, src: &str) -> Vec<Finding> {
        let lexed = lexer::lex(src);
        let mut files = BTreeMap::new();
        files.insert("m.rs".to_string(), &lexed);
        analyze(cfg, &files)
    }

    const CONSTRUCT: &str = r#"
        fn build() {
            let a = OrderedMutex::new("a", 10, 0);
            let b = OrderedMutex::new("b", 20, 0);
        }
    "#;

    #[test]
    fn ascending_nesting_is_clean() {
        let src =
            format!("{CONSTRUCT} fn ok(&self) {{ let g = self.a.lock(); let h = self.b.lock(); }}");
        assert!(run(&cfg_two_locks(), &src).is_empty());
    }

    #[test]
    fn descending_nesting_is_l002() {
        let src = format!(
            "{CONSTRUCT} fn bad(&self) {{ let g = self.b.lock(); let h = self.a.lock(); }}"
        );
        let f = run(&cfg_two_locks(), &src);
        assert!(f.iter().any(|f| f.rule == "DSA-L002"), "{f:?}");
    }

    #[test]
    fn opposite_orders_are_a_cycle() {
        let src = format!(
            "{CONSTRUCT}
             fn one(&self) {{ let g = self.a.lock(); let h = self.b.lock(); }}
             fn two(&self) {{ let g = self.b.lock(); let h = self.a.lock(); }}"
        );
        let f = run(&cfg_two_locks(), &src);
        assert!(f.iter().any(|f| f.rule == "DSA-L001"), "{f:?}");
    }

    #[test]
    fn transitive_edge_through_self_call() {
        let src = format!(
            "{CONSTRUCT}
             fn leaf(&self) {{ let g = self.a.lock(); }}
             fn outer(&self) {{ let g = self.b.lock(); self.leaf(); }}"
        );
        let f = run(&cfg_two_locks(), &src);
        assert!(
            f.iter()
                .any(|f| f.rule == "DSA-L002" && f.message.contains("leaf")),
            "{f:?}"
        );
    }

    #[test]
    fn drop_ends_a_let_bound_guard() {
        let src = format!(
            "{CONSTRUCT}
             fn ok(&self) {{ let g = self.b.lock(); drop(g); let h = self.a.lock(); }}"
        );
        assert!(run(&cfg_two_locks(), &src).is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = format!(
            "{CONSTRUCT}
             fn ok(&self) {{ let n = self.b.lock().len(); let h = self.a.lock(); }}"
        );
        assert!(run(&cfg_two_locks(), &src).is_empty());
    }

    #[test]
    fn assume_entries_create_edges() {
        let cfg = Config::parse(
            r#"
            [[lock]]
            name = "a"
            rank = 10
            file = "m.rs"
            field = "a"
            [[external-lock]]
            name = "z"
            rank = 5
            [[assume]]
            call = "helper.touch"
            locks = ["z"]
            "#,
        )
        .expect("config");
        let src = r#"
            fn build() { let a = OrderedMutex::new("a", 10, 0); }
            fn bad(&self) { let g = self.a.lock(); self.helper.touch(); }
        "#;
        let f = run(&cfg, src);
        assert!(
            f.iter()
                .any(|f| f.rule == "DSA-L002" && f.message.contains("`z`")),
            "{f:?}"
        );
    }

    #[test]
    fn l003_rank_and_inventory_mismatches() {
        let f = run(
            &cfg_two_locks(),
            r#"fn build() {
                let a = OrderedMutex::new("a", 11, 0);
                let g = OrderedMutex::new("ghost", 9, 0);
            }"#,
        );
        assert!(
            f.iter()
                .any(|f| f.rule == "DSA-L003" && f.message.contains("rank 11")),
            "{f:?}"
        );
        assert!(
            f.iter()
                .any(|f| f.rule == "DSA-L003" && f.message.contains("ghost")),
            "{f:?}"
        );
        // `b` declared but never constructed.
        assert!(
            f.iter()
                .any(|f| f.rule == "DSA-L003" && f.message.contains("`b`")),
            "{f:?}"
        );
    }
}
