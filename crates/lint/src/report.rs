//! Findings, waivers, and the two output formats.
//!
//! A **waiver** is an inline comment of the form
//!
//! ```text
//! // dsa-lint: allow(DSA-P001, reason="guarded by the arity check above")
//! ```
//!
//! and silences matching findings on its own line or, when the
//! comment stands alone, on the next line that has code. Waivers are
//! themselves checked: a waiver without a reason is a finding
//! (`DSA-W001`), and a waiver that silences nothing is a finding
//! (`DSA-W002`) — so the waiver list can only shrink as the code
//! improves, never silently rot.

use crate::lexer::Comment;

/// One finding: a rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: String,
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

impl Finding {
    pub fn new(rule: &str, file: &str, line: u32, message: impl Into<String>) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            message: message.into(),
        }
    }
}

/// A parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub rule: String,
    pub reason: String,
    pub file: String,
    /// Line of the waiver comment itself.
    pub line: u32,
    /// The code line this waiver covers (same line for a trailing
    /// comment, the next code line for a standalone one).
    pub covers: u32,
    pub used: bool,
}

/// Extracts waivers from a file's comments. `line_has_code(l)` tells
/// whether source line `l` has any token on it, which decides whether
/// a waiver is trailing (covers its own line) or standalone (covers
/// the next code line). Malformed waivers are returned as findings.
pub fn parse_waivers(
    file: &str,
    comments: &[Comment],
    line_has_code: impl Fn(u32) -> bool,
    max_line: u32,
) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        // Waivers are plain `//` comments; doc comments (`//!`, `///`)
        // and block comments may *mention* the syntax (this tool's own
        // docs do) without waiving anything.
        if c.text.starts_with("//!") || c.text.starts_with("///") || c.text.starts_with("/*") {
            continue;
        }
        let Some(at) = c.text.find("dsa-lint:") else {
            continue;
        };
        let body = c.text[at + "dsa-lint:".len()..].trim();
        let Some(args) = body
            .strip_prefix("allow")
            .map(str::trim_start)
            .and_then(|s| s.strip_prefix('('))
            .and_then(|s| s.rfind(')').map(|end| &s[..end]))
        else {
            findings.push(Finding::new(
                "DSA-W001",
                file,
                c.line,
                format!(
                    "malformed waiver `{}`: expected `dsa-lint: allow(RULE-ID, reason=\"...\")`",
                    c.text.trim()
                ),
            ));
            continue;
        };
        let (rule, rest) = match args.split_once(',') {
            Some((r, rest)) => (r.trim(), rest.trim()),
            None => (args.trim(), ""),
        };
        let reason = rest
            .strip_prefix("reason")
            .map(str::trim_start)
            .and_then(|s| s.strip_prefix('='))
            .map(str::trim)
            .and_then(|s| s.strip_prefix('"'))
            .and_then(|s| s.strip_suffix('"'))
            .unwrap_or("");
        if rule.is_empty() || reason.is_empty() {
            findings.push(Finding::new(
                "DSA-W001",
                file,
                c.line,
                "waiver must name a rule and a non-empty reason=\"...\"",
            ));
            continue;
        }
        let covers = if line_has_code(c.line) {
            c.line
        } else {
            // Standalone comment: covers the next line with code
            // (skipping further comment-only lines, so waivers can sit
            // above an explanatory comment block).
            (c.line + 1..=max_line)
                .find(|&l| line_has_code(l))
                .unwrap_or(c.line)
        };
        waivers.push(Waiver {
            rule: rule.to_string(),
            reason: reason.to_string(),
            file: file.to_string(),
            line: c.line,
            covers,
            used: false,
        });
    }
    (waivers, findings)
}

/// Applies `waivers` to `findings`: silenced findings are removed and
/// the waiver is marked used. Returns the surviving findings.
pub fn apply_waivers(findings: Vec<Finding>, waivers: &mut [Waiver]) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            for w in waivers.iter_mut() {
                if w.rule == f.rule && w.file == f.file && w.covers == f.line {
                    w.used = true;
                    return false;
                }
            }
            true
        })
        .collect()
}

/// One finding per never-used waiver.
pub fn unused_waiver_findings(waivers: &[Waiver]) -> Vec<Finding> {
    waivers
        .iter()
        .filter(|w| !w.used)
        .map(|w| {
            Finding::new(
                "DSA-W002",
                &w.file,
                w.line,
                format!(
                    "unused waiver for {}: nothing on line {} triggers it — delete the waiver",
                    w.rule, w.covers
                ),
            )
        })
        .collect()
}

/// Renders findings as `path:line: RULE message`, one per line,
/// sorted; the stable format the golden tests pin.
pub fn to_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: {} {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    out
}

/// Renders findings as a JSON array (the CI artifact).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}{}\n",
            json_str(&f.rule),
            json_str(&f.file),
            f.line,
            json_str(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn waivers_of(src: &str) -> (Vec<Waiver>, Vec<Finding>) {
        let lexed = lexer::lex(src);
        let code_lines: std::collections::BTreeSet<u32> =
            lexed.tokens.iter().map(|t| t.line).collect();
        let max = src.lines().count() as u32;
        parse_waivers("f.rs", &lexed.comments, |l| code_lines.contains(&l), max)
    }

    #[test]
    fn trailing_waiver_covers_its_own_line() {
        let (w, bad) = waivers_of(
            "let x = a.unwrap(); // dsa-lint: allow(DSA-P001, reason=\"startup only\")\n",
        );
        assert!(bad.is_empty());
        assert_eq!(w.len(), 1);
        assert_eq!((w[0].covers, w[0].rule.as_str()), (1, "DSA-P001"));
        assert_eq!(w[0].reason, "startup only");
    }

    #[test]
    fn standalone_waiver_covers_next_code_line() {
        let (w, bad) = waivers_of(
            "// dsa-lint: allow(DSA-C001, reason=\"bounded by MAX\")\n// explanation\nlet x = y as u32;\n",
        );
        assert!(bad.is_empty());
        assert_eq!(w[0].covers, 3);
    }

    #[test]
    fn missing_reason_is_a_finding() {
        let (w, bad) = waivers_of("// dsa-lint: allow(DSA-P001)\nlet x = 1;\n");
        assert!(w.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "DSA-W001");
    }

    #[test]
    fn unused_waivers_are_reported() {
        let (mut w, _) = waivers_of("// dsa-lint: allow(DSA-P001, reason=\"x\")\nlet y = 1;\n");
        let kept = apply_waivers(vec![Finding::new("DSA-P001", "f.rs", 2, "boom")], &mut w);
        assert!(kept.is_empty());
        assert!(unused_waiver_findings(&w).is_empty());

        let (mut w2, _) = waivers_of("// dsa-lint: allow(DSA-P001, reason=\"x\")\nlet y = 1;\n");
        let unused = unused_waiver_findings(&w2);
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].rule, "DSA-W002");
        let survive = apply_waivers(
            vec![Finding::new("DSA-P002", "f.rs", 2, "different rule")],
            &mut w2,
        );
        assert_eq!(survive.len(), 1, "waiver for another rule must not silence");
    }

    #[test]
    fn json_escapes() {
        let f = vec![Finding::new("R", "a\"b.rs", 3, "say \"hi\"\n")];
        let j = to_json(&f);
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("say \\\"hi\\\"\\n"));
    }
}
