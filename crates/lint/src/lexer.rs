//! A lightweight Rust lexer: just enough tokenization for dsa-lint's
//! rules, with zero dependencies.
//!
//! The rules need exactly four things the raw byte stream does not
//! give them: (1) tokens with **line numbers**, so findings are
//! addressable; (2) string/char literals skipped as opaque units, so
//! `"panic!"` inside a log message is not a finding; (3) comments
//! carried out-of-band, so `// dsa-lint: allow(...)` waivers can be
//! parsed without polluting the token stream; (4) the classic
//! `'a`-lifetime vs `'a'`-char ambiguity resolved. Everything subtler
//! (macro expansion, type inference) is deliberately out of scope —
//! the rules compensate with conservative heuristics and waivers.

/// What a token is; `text` on [`Tok`] always holds the exact source
/// slice, so most rules just match on text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// `'a` in `<'a>` — *not* a char literal.
    Lifetime,
    /// String, raw string, byte string, or char literal (one token).
    Literal,
    /// Integer or float literal.
    Num,
    /// Any single punctuation character: `.`, `(`, `[`, `!`, `:`, ...
    Punct,
}

/// One token, with the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: Kind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True for a punctuation token equal to `c`.
    pub fn is(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }

    /// True for an identifier token equal to `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }
}

/// A comment, with the 1-based line it starts on. Block comments are
/// reported whole (possibly multi-line); waiver parsing only looks at
/// line comments.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Never fails: unterminated constructs consume to end
/// of file, which is the most useful behavior for a linter (the
/// compiler will report the real error).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    // Advances `line` for every newline in b[from..to].
    macro_rules! count_lines {
        ($from:expr, $to:expr) => {
            line += b[$from..$to].iter().filter(|&&c| c == b'\n').count() as u32
        };
    }

    while i < n {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                // Block comment; Rust nests them.
                let (start, start_line) = (i, line);
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    text: src[start..i].to_string(),
                });
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                let (start, start_line) = (i, line);
                // Skip the r/br/rb prefix, count the hashes.
                while i < n && (b[i] == b'r' || b[i] == b'b') {
                    i += 1;
                }
                let mut hashes = 0;
                while i < n && b[i] == b'#' {
                    hashes += 1;
                    i += 1;
                }
                i += 1; // opening quote
                loop {
                    if i >= n {
                        break;
                    }
                    if b[i] == b'"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if i + 1 + k >= n || b[i + 1 + k] != b'#' {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            i += 1 + hashes;
                            break;
                        }
                    }
                    i += 1;
                }
                count_lines!(start, i);
                out.tokens.push(Tok {
                    kind: Kind::Literal,
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            b'"' => {
                let (start, start_line) = (i, line);
                i += 1;
                while i < n {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                let end = i.min(n);
                count_lines!(start, end);
                out.tokens.push(Tok {
                    kind: Kind::Literal,
                    text: src[start..end].to_string(),
                    line: start_line,
                });
            }
            b'b' if i + 1 < n && b[i + 1] == b'\'' => {
                // Byte literal b'x'.
                let start = i;
                i += 2;
                i = skip_char_body(b, i);
                out.tokens.push(Tok {
                    kind: Kind::Literal,
                    text: src[start..i.min(n)].to_string(),
                    line,
                });
            }
            b'\'' => {
                // Lifetime or char literal. `'a'` is a char; `'a` not
                // followed by a closing quote is a lifetime.
                if is_lifetime(b, i) {
                    let start = i;
                    i += 1;
                    while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.tokens.push(Tok {
                        kind: Kind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                } else {
                    let start = i;
                    i += 1;
                    i = skip_char_body(b, i);
                    out.tokens.push(Tok {
                        kind: Kind::Literal,
                        text: src[start..i.min(n)].to_string(),
                        line,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: Kind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n
                    && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                    // `0..n` is a range, not part of the number.
                    && !(b[i] == b'.' && i + 1 < n && b[i + 1] == b'.')
                {
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: Kind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                out.tokens.push(Tok {
                    kind: Kind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// `r"`, `r#`, `br"`, `br#`, `rb...` — a raw (byte) string start at `i`.
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let n = b.len();
    let mut j = i;
    // At most two prefix letters drawn from {r, b}, containing an r.
    let mut saw_r = false;
    let mut letters = 0;
    while j < n && letters < 2 && (b[j] == b'r' || b[j] == b'b') {
        saw_r |= b[j] == b'r';
        letters += 1;
        j += 1;
    }
    if !saw_r || letters == 0 {
        return false;
    }
    while j < n && b[j] == b'#' {
        j += 1;
    }
    j < n && b[j] == b'"'
}

/// True if the `'` at `i` starts a lifetime rather than a char literal.
fn is_lifetime(b: &[u8], i: usize) -> bool {
    let n = b.len();
    if i + 1 >= n {
        return false;
    }
    let c1 = b[i + 1];
    if !(c1.is_ascii_alphabetic() || c1 == b'_') {
        return false; // '\n' or similar: a char literal
    }
    // 'a' (char) vs 'a (lifetime): look at the byte after the first
    // identifier char. `'static`, `'_`, `'a` all continue with
    // ident chars or terminate without a quote.
    let mut j = i + 1;
    while j < n && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    !(j < n && b[j] == b'\'' && j == i + 2)
}

/// Consumes a char-literal body starting just after the opening quote,
/// returning the index just past the closing quote.
fn skip_char_body(b: &[u8], mut i: usize) -> usize {
    let n = b.len();
    while i < n {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            texts("fn a(x: u32) -> bool { x > 0 }"),
            ["fn", "a", "(", "x", ":", "u32", ")", "-", ">", "bool", "{", "x", ">", "0", "}"]
        );
    }

    #[test]
    fn strings_are_single_opaque_tokens() {
        let toks = texts(r#"let s = "panic! // not a comment"; x"#);
        assert_eq!(toks[3], "\"panic! // not a comment\"");
        assert_eq!(toks.last().map(String::as_str), Some("x"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = texts(r###"let s = r#"a "quoted" b"#; y"###);
        assert_eq!(toks[3], r###"r#"a "quoted" b"#"###);
        assert_eq!(toks.last().map(String::as_str), Some("y"));
    }

    #[test]
    fn lifetime_vs_char() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'a'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Lifetime)
            .collect();
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Literal)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].text, "'a'");
        assert_eq!(chars[1].text, "'\\n'");
    }

    #[test]
    fn comments_carried_out_of_band() {
        let lexed =
            lex("let x = 1; // dsa-lint: allow(X, reason=\"y\")\n/* block\nnested /* deep */ */ z");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("dsa-lint"));
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
        assert!(lexed.comments[1].text.contains("deep"));
        assert_eq!(lexed.tokens.last().map(|t| t.text.as_str()), Some("z"));
        assert_eq!(lexed.tokens.last().map(|t| t.line), Some(3));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let lexed = lex("let s = \"a\nb\nc\";\nx");
        let x = lexed.tokens.last().expect("token");
        assert_eq!(x.text, "x");
        assert_eq!(x.line, 4);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        assert_eq!(texts("0..n"), ["0", ".", ".", "n"]);
        assert_eq!(texts("1.5 + 2"), ["1.5", "+", "2"]);
    }
}
