//! Inventory fixture: a wrong rank literal, an undeclared lock, and a
//! declared lock with no construction site — three L003 findings.

pub struct Inv {
    right_field: OrderedMutex<u32>,
    ghost_field: OrderedMutex<u32>,
}

impl Inv {
    pub fn new() -> Inv {
        Inv {
            right_field: OrderedMutex::new("right", 11, 0),
            ghost_field: OrderedMutex::new("ghost", 5, 0),
        }
    }
}
