#![deny(unsafe_code)]

pub fn deny_without_being_listed_is_not() {}
