pub fn no_gate_at_all() {}
