#![deny(unsafe_code)]

pub fn deny_is_enough_when_listed() {}
