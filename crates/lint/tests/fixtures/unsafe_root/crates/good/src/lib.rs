#![forbid(unsafe_code)]

pub fn ok() {}
