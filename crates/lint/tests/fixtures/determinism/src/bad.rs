//! Determinism fixture: every construct here violates a D rule.

use std::collections::{HashMap, HashSet};
use std::time::{Instant, SystemTime};

pub fn leak_order(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.values().copied().collect()
}

pub fn walk(set: &HashSet<u32>) -> u32 {
    let mut total = 0;
    for x in set {
        total += x;
    }
    total
}

pub fn stamp() -> u128 {
    let t = Instant::now();
    let _ = SystemTime::now();
    t.elapsed().as_millis()
}

pub fn seed() -> u64 {
    let mut rng = thread_rng();
    let x: u64 = rand::random();
    let _ = rng;
    x
}
