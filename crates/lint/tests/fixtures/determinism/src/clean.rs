//! The clean half: ordered iteration passes, and tests may use clocks.

use std::collections::{BTreeMap, HashMap};

pub fn sorted_keys(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}

pub fn reorder(m: &HashMap<u32, u32>) -> BTreeMap<u32, u32> {
    m.iter().map(|(&k, &v)| (k, v)).collect::<BTreeMap<_, _>>()
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_in_tests_is_fine() {
        let _ = Instant::now();
    }
}
