//! Panic-freedom fixture: request-path code that can die.

pub fn first(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}

pub fn must(opt: Option<u32>) -> u32 {
    opt.expect("present")
}

pub fn dispatch(kind: u8) -> u32 {
    match kind {
        0 => 1,
        _ => unreachable!("bad kind"),
    }
}

pub fn not_done() {
    todo!()
}

pub fn pick(fields: &[u32]) -> u32 {
    fields[0]
}
