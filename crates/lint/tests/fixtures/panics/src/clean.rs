//! The same shapes written panic-free: none of these is a finding.

pub fn first(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

pub fn fallback(opt: Option<u32>) -> u32 {
    opt.unwrap_or_else(|| 0)
}

pub fn pick(fields: &[u32]) -> Option<u32> {
    fields.get(0).copied()
}

pub fn head(v: &[u32], n: usize) -> &[u32] {
    &v[..n]
}
