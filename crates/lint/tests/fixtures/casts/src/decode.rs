//! Cast-safety fixture: narrowing casts in a decode path are
//! findings; widening from a provably-small source is not.

pub fn read_len(x: u64) -> usize {
    x as usize
}

pub fn read_id(x: u64) -> u32 {
    x as u32
}

pub fn widen(b: [u8; 4]) -> usize {
    u32::from_be_bytes(b) as usize
}

pub fn float_ok(x: u64) -> f64 {
    x as f64
}
