//! Lock-order fixture: `good` climbs the ranks, `bad` descends them.
//! Together they also close a cycle, so both L001 and L002 fire.

pub struct Svc {
    alpha: OrderedMutex<u32>,
    beta: OrderedMutex<u32>,
}

impl Svc {
    pub fn new() -> Svc {
        Svc {
            alpha: OrderedMutex::new("alpha", 10, 0),
            beta: OrderedMutex::new("beta", 20, 0),
        }
    }

    pub fn good(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        let _ = (*a, *b);
    }

    pub fn bad(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        let _ = (*a, *b);
    }
}
