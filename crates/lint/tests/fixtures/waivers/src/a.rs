//! Waiver fixture. The trailing waiver below silences its finding;
//! the standalone one covers a line that triggers nothing (DSA-W002);
//! the reason-less one is malformed (DSA-W001) and silences nothing.

pub fn startup(opt: Option<u32>) -> u32 {
    opt.expect("startup only") // dsa-lint: allow(DSA-P001, reason="runs before any traffic")
}

// dsa-lint: allow(DSA-P001, reason="nothing here triggers it")
pub fn quiet() -> u32 {
    7
}

// dsa-lint: allow(DSA-P001)
pub fn sloppy(opt: Option<u32>) -> u32 {
    opt.unwrap()
}
