//! Golden tests: each directory under `tests/fixtures/` is a
//! mini-workspace with its own `lint.toml` and an `expected.txt`
//! pinning dsa-lint's exact text output (the same rendering the CLI
//! prints). The corpus is the executable specification of every rule
//! ID: a rule change that shifts a finding, a message, or a line
//! number fails here first.
//!
//! To update after an intentional rule change, re-run the CLI against
//! the fixture and re-pin:
//!
//! ```text
//! cargo run -p dsa-lint -- --root crates/lint/tests/fixtures/<name> \
//!     --config crates/lint/tests/fixtures/<name>/lint.toml > .../expected.txt
//! ```

use std::path::PathBuf;

use dsa_lint::config::Config;
use dsa_lint::{report, run, Options};

fn check(fixture: &str) {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let toml = std::fs::read_to_string(root.join("lint.toml")).expect("fixture lint.toml");
    let config = Config::parse(&toml).unwrap_or_else(|e| panic!("fixture config parses: {e}"));
    let outcome = run(&Options {
        root: root.clone(),
        config,
    })
    .unwrap_or_else(|e| panic!("lint runs on fixture `{fixture}`: {e}"));
    let actual = report::to_text(&outcome.findings);
    let expected = std::fs::read_to_string(root.join("expected.txt")).expect("expected.txt");
    assert_eq!(
        actual, expected,
        "fixture `{fixture}` drifted from its expected findings"
    );
}

#[test]
fn determinism_rules() {
    check("determinism");
}

#[test]
fn panic_rules() {
    check("panics");
}

#[test]
fn cast_rules() {
    check("casts");
}

#[test]
fn unsafe_crate_roots() {
    check("unsafe_root");
}

#[test]
fn lock_order_cycle_and_rank() {
    check("lock_order");
}

#[test]
fn lock_inventory_agreement() {
    check("lock_inventory");
}

#[test]
fn waiver_mechanics() {
    check("waivers");
}

/// The workspace itself must lint clean — the same invocation CI runs.
/// This is the acceptance gate: zero findings, zero unused waivers.
#[test]
fn workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let toml = std::fs::read_to_string(root.join("lint.toml")).expect("workspace lint.toml");
    let config = Config::parse(&toml).expect("workspace config parses");
    let outcome = run(&Options {
        root: root.clone(),
        config,
    })
    .expect("lint runs on the workspace");
    assert!(
        outcome.findings.is_empty(),
        "workspace lint must be clean:\n{}",
        report::to_text(&outcome.findings)
    );
}

/// The JSON artifact renderer stays valid and stable for the findings
/// the fixtures produce.
#[test]
fn json_artifact_shape() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/casts");
    let toml = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml");
    let config = Config::parse(&toml).expect("config");
    let outcome = run(&Options {
        root: root.clone(),
        config,
    })
    .expect("lint runs");
    let json = report::to_json(&outcome.findings);
    assert!(json.starts_with("[\n") && json.ends_with("]\n"));
    assert_eq!(json.matches("\"rule\":\"DSA-C001\"").count(), 2);
    assert!(json.contains("\"file\":\"src/decode.rs\""));
}
