//! Integration test: a classic distributed BFS as a sanity check that
//! the simulator's round semantics (one hop per round) are exact.

use dsa_graphs::traversal::bfs_distances;
use dsa_graphs::{gen, Graph};
use dsa_runtime::{Network, Outbox, Protocol, RoundCtx, Simulator, Word};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Flood-based BFS from vertex 0: a vertex that first learns a distance
/// `d` at round `r` must satisfy `d = r - 1` exactly, because messages
/// travel one hop per round.
struct Bfs;

#[derive(Debug)]
struct Node {
    dist: Option<u64>,
    announced: bool,
    learned_at_round: Option<u64>,
}

impl Protocol for Bfs {
    type Node = Node;

    fn init(&self, ctx: &mut RoundCtx<'_>) -> Node {
        Node {
            dist: (ctx.me == 0).then_some(0),
            announced: false,
            learned_at_round: None,
        }
    }

    fn round(&self, node: &mut Node, ctx: &mut RoundCtx<'_>, out: &mut Outbox) {
        for env in ctx.inbox {
            let d = env.words[0] + 1;
            if node.dist.is_none_or(|cur| d < cur) {
                node.dist = Some(d);
                node.announced = false;
                node.learned_at_round = Some(ctx.round);
            }
        }
        if let Some(d) = node.dist {
            if !node.announced {
                node.announced = true;
                out.broadcast(ctx.neighbors, vec![d as Word]);
            }
        }
    }

    fn is_done(&self, node: &Node) -> bool {
        node.announced || node.dist.is_none()
    }
}

fn check(g: &Graph) {
    let net = Network::from_graph(g);
    let run = Simulator::new(&net, Bfs).run(10_000);
    let expected = bfs_distances(g, 0);
    for (v, node) in run.nodes.iter().enumerate() {
        assert_eq!(
            node.dist.map(|d| d as usize),
            expected[v],
            "distance mismatch at vertex {v}"
        );
        // Timing: the root announces in round 1, so a distance-d
        // vertex learns its distance exactly at round d + 1 — one hop
        // per round, no faster and no slower.
        if let (Some(d), Some(r)) = (node.dist, node.learned_at_round) {
            assert_eq!(d + 1, r, "vertex {v} learned distance {d} at round {r}");
        }
    }
    // All messages are single words: BFS is CONGEST.
    assert!(run.metrics.max_message_words <= 1);
}

#[test]
fn bfs_on_structured_graphs() {
    check(&gen::path(17));
    check(&gen::cycle(12));
    check(&gen::grid(5, 7));
    check(&gen::star(9));
    check(&gen::complete(8));
}

#[test]
fn bfs_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..5 {
        check(&gen::gnp_connected(60, 0.07, &mut rng));
    }
    // Disconnected: the far component stays unreached.
    let g = Graph::from_edges(5, [(0, 1), (2, 3)]);
    check(&g);
}
