//! The synchronous round loop.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dsa_graphs::VertexId;

use crate::{Metrics, Network};

/// One message word, standing for `Θ(log n)` bits.
pub type Word = u64;

/// A delivered message: sender plus payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// The neighbor that sent this message.
    pub from: VertexId,
    /// The payload, in words.
    pub words: Vec<Word>,
}

/// The outgoing messages of one vertex in one round.
#[derive(Debug, Default)]
pub struct Outbox {
    msgs: Vec<(VertexId, Vec<Word>)>,
}

impl Outbox {
    /// Sends `words` to the neighbor `to`. The simulator checks that
    /// `to` really is a neighbor.
    pub fn send(&mut self, to: VertexId, words: Vec<Word>) {
        self.msgs.push((to, words));
    }

    /// Sends a copy of `words` to every vertex in `neighbors`.
    pub fn broadcast(&mut self, neighbors: &[VertexId], words: Vec<Word>) {
        for &u in neighbors {
            self.msgs.push((u, words.clone()));
        }
    }

    /// Consumes the outbox, returning its `(to, payload)` messages in
    /// send order. This is the **only** way traffic leaves an outbox —
    /// the simulator drains each round's outbox through it, and
    /// protocol adapters (e.g. [`crate::Fragmented`]) use it to
    /// re-route an inner protocol's messages.
    pub fn into_messages(self) -> Vec<(VertexId, Vec<Word>)> {
        self.msgs
    }
}

/// Per-round context handed to a [`Protocol`]'s node program.
pub struct RoundCtx<'a> {
    /// This vertex's id.
    pub me: VertexId,
    /// Number of vertices in the network (vertices know `n`, or a
    /// polynomial upper bound, as the paper assumes).
    pub n: usize,
    /// Sorted neighbor list of this vertex.
    pub neighbors: &'a [VertexId],
    /// Current round number (0 for `init`, then 1, 2, ...).
    pub round: u64,
    /// Messages received this round (sent by neighbors last round),
    /// sorted by sender. Empty at round 1 unless `init` sent messages.
    pub inbox: &'a [Envelope],
    /// This vertex's private randomness, deterministic per (seed, id).
    pub rng: &'a mut StdRng,
}

/// A distributed node program.
///
/// `init` builds the initial state (round 0; it may not send).
/// `round` is called every subsequent round with the inbox of messages
/// sent in the previous round, and fills an [`Outbox`].
/// The simulator stops when every node reports [`Protocol::is_done`]
/// and no messages are in flight, or when the round cap is hit.
pub trait Protocol {
    /// Per-vertex state.
    type Node;

    /// Creates the state of vertex `ctx.me`. Called with `round == 0`
    /// and an empty inbox.
    fn init(&self, ctx: &mut RoundCtx<'_>) -> Self::Node;

    /// Executes one synchronous round for vertex `ctx.me`.
    fn round(&self, node: &mut Self::Node, ctx: &mut RoundCtx<'_>, out: &mut Outbox);

    /// Whether this vertex has produced its final output.
    fn is_done(&self, node: &Self::Node) -> bool;
}

/// The result of a simulator run: final node states plus traffic
/// metrics.
#[derive(Debug)]
pub struct RunReport<N> {
    /// Final per-vertex states, indexed by vertex id.
    pub nodes: Vec<N>,
    /// Traffic and round accounting.
    pub metrics: Metrics,
    /// Whether all nodes reported done before the round cap.
    pub completed: bool,
}

/// The synchronous simulator. Construct with [`Simulator::new`],
/// optionally configure, then [`Simulator::run`].
pub struct Simulator<'a, P: Protocol> {
    net: &'a Network,
    protocol: P,
    seed: u64,
    bandwidth_cap_words: Option<usize>,
    cut: Option<Vec<bool>>,
}

impl<'a, P: Protocol> Simulator<'a, P> {
    /// Creates a simulator for `protocol` on `net` with seed 0.
    pub fn new(net: &'a Network, protocol: P) -> Self {
        Simulator {
            net,
            protocol,
            seed: 0,
            bandwidth_cap_words: None,
            cut: None,
        }
    }

    /// Sets the global seed. Each vertex derives an independent RNG
    /// from `(seed, vertex id)`, so runs are reproducible.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Configures a CONGEST bandwidth cap, in words per message.
    /// Messages exceeding the cap are still delivered, but counted in
    /// [`Metrics::cap_violations`] — the point of the Section 1.3
    /// discussion is to *measure* by how much a LOCAL protocol would
    /// overflow CONGEST.
    pub fn bandwidth_cap_words(mut self, cap: usize) -> Self {
        self.bandwidth_cap_words = Some(cap);
        self
    }

    /// Configures a vertex cut to meter: `side[v]` is `true` for
    /// Bob's vertices (e.g. `Y1` in the Section 2 construction).
    /// Messages between different sides are counted in
    /// [`Metrics::cut_words`].
    ///
    /// # Panics
    ///
    /// Panics if `side.len()` differs from the number of vertices.
    pub fn meter_cut(mut self, side: Vec<bool>) -> Self {
        assert_eq!(side.len(), self.net.num_vertices(), "cut size mismatch");
        self.cut = Some(side);
        self
    }

    /// Runs until every node is done (and no messages are in flight) or
    /// `max_rounds` rounds have executed.
    pub fn run(self, max_rounds: u64) -> RunReport<P::Node> {
        let n = self.net.num_vertices();
        let mut rngs: Vec<StdRng> = (0..n)
            .map(|v| {
                StdRng::seed_from_u64(
                    self.seed
                        ^ (v as u64)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .rotate_left(17),
                )
            })
            .collect();

        let mut metrics = Metrics {
            cap_violations: self.bandwidth_cap_words.map(|_| 0),
            cut_words: self.cut.as_ref().map(|_| 0),
            cut_messages: self.cut.as_ref().map(|_| 0),
            ..Metrics::default()
        };

        // Initialize nodes.
        let mut nodes: Vec<P::Node> = Vec::with_capacity(n);
        for (v, rng) in rngs.iter_mut().enumerate() {
            let mut ctx = RoundCtx {
                me: v,
                n,
                neighbors: self.net.neighbors(v),
                round: 0,
                inbox: &[],
                rng,
            };
            nodes.push(self.protocol.init(&mut ctx));
        }

        // inboxes[v] = messages to deliver to v at the next round.
        let mut inboxes: Vec<Vec<Envelope>> = vec![Vec::new(); n];
        let mut completed = false;

        for round in 1..=max_rounds {
            // Termination: everyone done and nothing in flight.
            let in_flight = inboxes.iter().any(|b| !b.is_empty());
            if !in_flight && nodes.iter().all(|node| self.protocol.is_done(node)) {
                completed = true;
                break;
            }

            metrics.rounds = round;
            let mut next_inboxes: Vec<Vec<Envelope>> = vec![Vec::new(); n];
            let mut round_max_words = 0usize;

            for v in 0..n {
                // Deliver in deterministic order.
                let mut inbox = std::mem::take(&mut inboxes[v]);
                inbox.sort_by_key(|e| e.from);
                let mut out = Outbox::default();
                let mut ctx = RoundCtx {
                    me: v,
                    n,
                    neighbors: self.net.neighbors(v),
                    round,
                    inbox: &inbox,
                    rng: &mut rngs[v],
                };
                self.protocol.round(&mut nodes[v], &mut ctx, &mut out);

                for (to, words) in out.into_messages() {
                    assert!(
                        self.net.are_neighbors(v, to),
                        "vertex {v} tried to message non-neighbor {to}"
                    );
                    metrics.total_messages += 1;
                    metrics.total_words += words.len() as u64;
                    round_max_words = round_max_words.max(words.len());
                    metrics.max_message_words = metrics.max_message_words.max(words.len());
                    if let (Some(cap), Some(viol)) =
                        (self.bandwidth_cap_words, metrics.cap_violations.as_mut())
                    {
                        if words.len() > cap {
                            *viol += 1;
                        }
                    }
                    if let Some(cut) = &self.cut {
                        if cut[v] != cut[to] {
                            *metrics.cut_words.as_mut().expect("cut metered") += words.len() as u64;
                            *metrics.cut_messages.as_mut().expect("cut metered") += 1;
                        }
                    }
                    next_inboxes[to].push(Envelope { from: v, words });
                }
            }

            metrics.per_round_max_words.push(round_max_words);
            inboxes = next_inboxes;
        }

        if !completed {
            let in_flight = inboxes.iter().any(|b| !b.is_empty());
            completed = !in_flight && nodes.iter().all(|node| self.protocol.is_done(node));
        }

        RunReport {
            nodes,
            metrics,
            completed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_graphs::Graph;

    /// Every vertex sends its id to all neighbors for `k` rounds and
    /// records everything it hears.
    struct Gossip {
        k: u64,
    }

    #[derive(Debug)]
    struct GossipNode {
        heard: Vec<VertexId>,
        done: bool,
    }

    impl Protocol for Gossip {
        type Node = GossipNode;

        fn init(&self, _ctx: &mut RoundCtx<'_>) -> GossipNode {
            GossipNode {
                heard: Vec::new(),
                done: false,
            }
        }

        fn round(&self, node: &mut GossipNode, ctx: &mut RoundCtx<'_>, out: &mut Outbox) {
            for env in ctx.inbox {
                node.heard.push(env.words[0] as VertexId);
            }
            if ctx.round <= self.k {
                out.broadcast(ctx.neighbors, vec![ctx.me as Word]);
            } else {
                node.done = true;
            }
        }

        fn is_done(&self, node: &GossipNode) -> bool {
            node.done
        }
    }

    #[test]
    fn gossip_traffic_accounting() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let net = Network::from_graph(&g);
        let run = Simulator::new(&net, Gossip { k: 2 }).run(100);
        assert!(run.completed);
        // 2 rounds of sending, 4 directed messages per round.
        assert_eq!(run.metrics.total_messages, 8);
        assert_eq!(run.metrics.total_words, 8);
        assert_eq!(run.metrics.max_message_words, 1);
        // Vertex 1 heard 0 and 2 twice each.
        let mut heard = run.nodes[1].heard.clone();
        heard.sort_unstable();
        assert_eq!(heard, vec![0, 0, 2, 2]);
    }

    #[test]
    fn cut_metering_counts_crossing_words() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let net = Network::from_graph(&g);
        // Bob holds {2, 3}: only link 1-2 crosses.
        let run = Simulator::new(&net, Gossip { k: 1 })
            .meter_cut(vec![false, false, true, true])
            .run(100);
        // One round of sending: messages 1->2 and 2->1 cross.
        assert_eq!(run.metrics.cut_messages, Some(2));
        assert_eq!(run.metrics.cut_words, Some(2));
        assert_eq!(run.metrics.cut_bits(4), Some(4));
    }

    #[test]
    fn bandwidth_cap_counts_violations() {
        struct BigTalk;
        struct N(bool);
        impl Protocol for BigTalk {
            type Node = N;
            fn init(&self, _ctx: &mut RoundCtx<'_>) -> N {
                N(false)
            }
            fn round(&self, node: &mut N, ctx: &mut RoundCtx<'_>, out: &mut Outbox) {
                if ctx.round == 1 {
                    out.broadcast(ctx.neighbors, vec![0; 10]);
                } else {
                    node.0 = true;
                }
            }
            fn is_done(&self, node: &N) -> bool {
                node.0
            }
        }
        let g = Graph::from_edges(2, [(0, 1)]);
        let net = Network::from_graph(&g);
        let run = Simulator::new(&net, BigTalk).bandwidth_cap_words(3).run(10);
        assert_eq!(run.metrics.cap_violations, Some(2));
        assert_eq!(run.metrics.max_message_words, 10);
    }

    #[test]
    fn determinism_from_seed() {
        use rand::Rng;
        struct Coin;
        struct N(u64, bool);
        impl Protocol for Coin {
            type Node = N;
            fn init(&self, _ctx: &mut RoundCtx<'_>) -> N {
                N(0, false)
            }
            fn round(&self, node: &mut N, ctx: &mut RoundCtx<'_>, _out: &mut Outbox) {
                node.0 = ctx.rng.gen();
                node.1 = true;
            }
            fn is_done(&self, node: &N) -> bool {
                node.1
            }
        }
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let net = Network::from_graph(&g);
        let a = Simulator::new(&net, Coin).seed(42).run(10);
        let b = Simulator::new(&net, Coin).seed(42).run(10);
        let c = Simulator::new(&net, Coin).seed(43).run(10);
        let va: Vec<u64> = a.nodes.iter().map(|n| n.0).collect();
        let vb: Vec<u64> = b.nodes.iter().map(|n| n.0).collect();
        let vc: Vec<u64> = c.nodes.iter().map(|n| n.0).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
        // Different vertices get different randomness.
        assert_ne!(va[0], va[1]);
    }

    #[test]
    fn round_cap_stops_nonterminating_protocol() {
        struct Forever;
        impl Protocol for Forever {
            type Node = ();
            fn init(&self, _ctx: &mut RoundCtx<'_>) {}
            fn round(&self, _n: &mut (), ctx: &mut RoundCtx<'_>, out: &mut Outbox) {
                out.broadcast(ctx.neighbors, vec![1]);
            }
            fn is_done(&self, _n: &()) -> bool {
                false
            }
        }
        let g = Graph::from_edges(2, [(0, 1)]);
        let net = Network::from_graph(&g);
        let run = Simulator::new(&net, Forever).run(5);
        assert!(!run.completed);
        assert_eq!(run.metrics.rounds, 5);
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn messaging_non_neighbor_panics() {
        struct Bad;
        impl Protocol for Bad {
            type Node = ();
            fn init(&self, _ctx: &mut RoundCtx<'_>) {}
            fn round(&self, _n: &mut (), _ctx: &mut RoundCtx<'_>, out: &mut Outbox) {
                out.send(2, vec![1]);
            }
            fn is_done(&self, _n: &()) -> bool {
                false
            }
        }
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let net = Network::from_graph(&g);
        let _ = Simulator::new(&net, Bad).run(2);
    }
}
