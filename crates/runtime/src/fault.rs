//! Deterministic, seeded fault injection for chaos testing.
//!
//! A [`FaultPlan`] names *fault points* — call sites in the serving
//! stack that have opted into injection — and assigns each a firing
//! rate (and optionally a parameter, e.g. an injected latency). A
//! [`FaultInjector`] evaluates the plan: the decision for the *n*-th
//! arrival at a point is a pure function of `(seed, point, n)`, so a
//! chaos run is reproducible given the same request sequence — no
//! wall clock, no global RNG.
//!
//! # Plan syntax
//!
//! A plan is a `;`-separated list of `key=value` clauses:
//!
//! ```text
//! seed=42;store.append.err=0.5;engine.latency_ms=5@0.25;conn.drop=0.1
//! ```
//!
//! * `seed=<u64>` — the deterministic seed (defaults to 0);
//! * `<point>=<rate>` — fire at `<point>` with probability `<rate>`
//!   (a float in `[0, 1]`);
//! * `<point>=<value>@<rate>` — fire with probability `<rate>`,
//!   carrying the integer parameter `<value>` (e.g. milliseconds of
//!   injected latency).
//!
//! Unknown point names are accepted (the plan does not know which
//! points the binary compiles in); a point absent from the plan never
//! fires. The serving stack's points are documented in the README's
//! Operations section: `store.append.err`, `store.append.short`,
//! `store.append.corrupt`, `store.read.err`, `engine.abort`,
//! `engine.latency_ms`, `conn.drop`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One parsed fault rule: fire with probability `rate`, optionally
/// carrying an integer parameter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRule {
    /// Firing probability in `[0, 1]`.
    pub rate: f64,
    /// Optional integer parameter (`<value>@<rate>` syntax), e.g.
    /// milliseconds of injected latency.
    pub value: Option<u64>,
}

/// A parsed fault plan: a seed plus per-point rules. See the module
/// docs for the spec syntax.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed of the deterministic firing decisions.
    pub seed: u64,
    /// Rules keyed by fault-point name (ordered, so rendering and
    /// iteration are deterministic).
    pub rules: BTreeMap<String, FaultRule>,
}

impl FaultPlan {
    /// Parses a plan spec. Returns a human-readable error naming the
    /// offending clause on malformed input.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause `{clause}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                plan.seed = value
                    .parse()
                    .map_err(|_| format!("fault seed `{value}` is not a u64"))?;
                continue;
            }
            let rule = match value.split_once('@') {
                Some((v, rate)) => FaultRule {
                    rate: parse_rate(rate.trim(), clause)?,
                    value: Some(
                        v.trim()
                            .parse()
                            .map_err(|_| format!("fault value in `{clause}` is not a u64"))?,
                    ),
                },
                None => FaultRule {
                    rate: parse_rate(value, clause)?,
                    value: None,
                },
            };
            plan.rules.insert(key.to_string(), rule);
        }
        Ok(plan)
    }

    /// True when no rule can ever fire.
    pub fn is_empty(&self) -> bool {
        self.rules.values().all(|r| r.rate <= 0.0)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for (point, rule) in &self.rules {
            match rule.value {
                Some(v) => write!(f, ";{point}={v}@{}", rule.rate)?,
                None => write!(f, ";{point}={}", rule.rate)?,
            }
        }
        Ok(())
    }
}

fn parse_rate(raw: &str, clause: &str) -> Result<f64, String> {
    let rate: f64 = raw
        .parse()
        .map_err(|_| format!("fault rate in `{clause}` is not a float"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("fault rate in `{clause}` is outside [0, 1]"));
    }
    Ok(rate)
}

/// Evaluates a [`FaultPlan`] deterministically. Thread-safe and cheap
/// when the consulted point has no rule (one map lookup, no atomics).
///
/// Decision function: the *n*-th arrival at point `p` fires iff
/// `splitmix64(seed ^ fnv64(p) ^ n)`, scaled to `[0, 1)`, is below the
/// rule's rate — independent of thread interleaving across *different*
/// points, and reproducible for a fixed per-point arrival order.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Per-point arrival counters, keyed by rule name. The key set is
    /// fixed at construction so lookups after that are lock-free in
    /// spirit (one mutex guards the map, held only to find the slot).
    arrivals: Mutex<BTreeMap<String, u64>>,
    /// Total faults fired, across all points (for tests and chaos
    /// reports: a plan that never fired proves nothing).
    fired: AtomicU64,
}

impl FaultInjector {
    /// Builds an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            arrivals: Mutex::new(BTreeMap::new()),
            fired: AtomicU64::new(0),
        }
    }

    /// An injector that never fires (the production default); consults
    /// an empty plan.
    pub fn disabled() -> Self {
        FaultInjector::new(FaultPlan::default())
    }

    /// The plan this injector evaluates.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total faults fired so far, across all points.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Should the current arrival at `point` fault? Advances the
    /// point's arrival counter; a point with no rule never fires and
    /// does not count arrivals.
    pub fn fire(&self, point: &str) -> bool {
        let Some(rule) = self.plan.rules.get(point) else {
            return false;
        };
        if rule.rate <= 0.0 {
            return false;
        }
        let n = {
            let mut arrivals = self.arrivals.lock().expect("fault arrivals lock");
            let slot = arrivals.entry(point.to_string()).or_insert(0);
            let n = *slot;
            *slot += 1;
            n
        };
        let h = splitmix64(self.plan.seed ^ fnv64(point.as_bytes()) ^ n.wrapping_mul(GOLDEN));
        // Top 53 bits → uniform in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let fire = u < rule.rate;
        if fire {
            self.fired.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Like [`FaultInjector::fire`], but returns the rule's integer
    /// parameter interpreted as milliseconds when it fires. A firing
    /// rule without a parameter yields a zero duration.
    pub fn latency(&self, point: &str) -> Option<Duration> {
        let value = self.plan.rules.get(point)?.value;
        if self.fire(point) {
            Some(Duration::from_millis(value.unwrap_or(0)))
        } else {
            None
        }
    }

    /// Like [`FaultInjector::fire`], but packages the fault as an IO
    /// error naming the point (for store/connection fault sites).
    pub fn io_error(&self, point: &str) -> Option<std::io::Error> {
        if self.fire(point) {
            Some(std::io::Error::other(format!("injected fault: {point}")))
        } else {
            None
        }
    }
}

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(GOLDEN);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rates_values_and_seed() {
        let plan = FaultPlan::parse("seed=42; store.append.err=0.5 ;engine.latency_ms=5@0.25")
            .expect("valid plan");
        assert_eq!(plan.seed, 42);
        assert_eq!(
            plan.rules["store.append.err"],
            FaultRule {
                rate: 0.5,
                value: None
            }
        );
        assert_eq!(
            plan.rules["engine.latency_ms"],
            FaultRule {
                rate: 0.25,
                value: Some(5)
            }
        );
        // Display round-trips through parse.
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn rejects_malformed_clauses() {
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("p=1.5").is_err());
        assert!(FaultPlan::parse("p=-0.1").is_err());
        assert!(FaultPlan::parse("p=x@0.5").is_err());
        assert!(FaultPlan::parse("").is_ok(), "empty plan is the no-op plan");
    }

    #[test]
    fn decisions_are_deterministic_and_rate_shaped() {
        let plan = FaultPlan::parse("seed=7;a=0.3;b=1.0;c=0.0").unwrap();
        let x = FaultInjector::new(plan.clone());
        let y = FaultInjector::new(plan);
        let xs: Vec<bool> = (0..1000).map(|_| x.fire("a")).collect();
        let ys: Vec<bool> = (0..1000).map(|_| y.fire("a")).collect();
        assert_eq!(xs, ys, "same seed, same point, same arrival order");
        let hits = xs.iter().filter(|&&f| f).count();
        assert!((200..400).contains(&hits), "rate 0.3 fired {hits}/1000");
        assert!((0..1000).all(|_| x.fire("b")), "rate 1.0 always fires");
        assert!((0..1000).all(|_| !x.fire("c")), "rate 0.0 never fires");
        assert!(!x.fire("unknown.point"), "unplanned points never fire");
        assert!(x.fired() > 0);
        assert!(!FaultInjector::disabled().fire("a"));
    }

    #[test]
    fn latency_and_io_error_carry_the_rule() {
        let inj = FaultInjector::new(FaultPlan::parse("seed=1;lat=20@1.0;io=1.0").unwrap());
        assert_eq!(inj.latency("lat"), Some(Duration::from_millis(20)));
        assert_eq!(inj.latency("missing"), None);
        let err = inj.io_error("io").expect("rate 1.0 fires");
        assert!(err.to_string().contains("injected fault: io"));
        assert!(inj.io_error("missing").is_none());
    }
}
