//! A synchronous message-passing simulator for the LOCAL and CONGEST
//! models of distributed computing.
//!
//! The paper's algorithms are stated for the classic synchronous models
//! (Linial's LOCAL \[51\] and Peleg's CONGEST \[54\]): computation
//! proceeds in rounds; in every round each vertex of the communication
//! graph sends one message to each neighbor, receives its neighbors'
//! messages, and updates its state. LOCAL places no bound on message
//! size; CONGEST bounds every message by `O(log n)` bits.
//!
//! This crate realizes that model exactly:
//!
//! * [`Network`] — the communication graph (always undirected, even for
//!   directed problem instances, per Section 1.5 of the paper),
//! * [`Protocol`] — a node program: per-vertex state plus a `round`
//!   function from inbox to outbox,
//! * [`Simulator`] — the synchronous round loop, with deterministic
//!   per-node RNGs derived from a single seed,
//! * [`Metrics`] — word-level accounting: messages are sequences of
//!   *words*, each standing for `Θ(log n)` bits. The metrics record the
//!   largest message (to check whether a protocol is CONGEST-compatible
//!   or by how much it exceeds the bound — the `O(Δ)` overhead
//!   discussed in Section 1.3), total traffic, and, optionally, the
//!   traffic crossing a planted vertex cut (the Alice/Bob simulation
//!   argument of Section 2).
//!
//! # Example
//!
//! A protocol that floods the maximum vertex id for a fixed number of
//! rounds:
//!
//! ```
//! use dsa_graphs::Graph;
//! use dsa_runtime::{Network, Outbox, Protocol, RoundCtx, Simulator};
//!
//! struct MaxFlood { rounds: u64 }
//!
//! struct Node { best: u64, done: bool }
//!
//! impl Protocol for MaxFlood {
//!     type Node = Node;
//!     fn init(&self, ctx: &mut RoundCtx<'_>) -> Node {
//!         Node { best: ctx.me as u64, done: false }
//!     }
//!     fn round(&self, node: &mut Node, ctx: &mut RoundCtx<'_>, out: &mut Outbox) {
//!         for env in ctx.inbox {
//!             node.best = node.best.max(env.words[0]);
//!         }
//!         if ctx.round <= self.rounds {
//!             out.broadcast(ctx.neighbors, vec![node.best]);
//!         } else {
//!             node.done = true;
//!         }
//!     }
//!     fn is_done(&self, node: &Node) -> bool { node.done }
//! }
//!
//! let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
//! let net = Network::from_graph(&g);
//! let run = Simulator::new(&net, MaxFlood { rounds: 3 }).seed(7).run(100);
//! assert!(run.nodes.iter().all(|n| n.best == 3));
//! assert_eq!(run.metrics.max_message_words, 1); // CONGEST-friendly
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
pub mod fault;
mod fragment;
pub mod json;
mod metrics;
mod network;
pub mod obs;
mod simulator;
pub mod sync;

pub use codec::{WordReader, WordWriter};
pub use fault::{FaultInjector, FaultPlan};
pub use fragment::{Fragmented, FragmentedNode};
pub use metrics::{LatencyRecorder, Metrics};
pub use network::Network;
pub use obs::{FlightRecorder, Level, TraceEvent};
pub use simulator::{Envelope, Outbox, Protocol, RoundCtx, RunReport, Simulator, Word};
pub use sync::{OrderedMutex, OrderedMutexGuard};
