//! CONGEST emulation of LOCAL protocols by message fragmentation.
//!
//! Section 1.3 of the paper observes that a *direct implementation* of
//! the Section-4 algorithm in the CONGEST model costs an `O(Δ)` factor:
//! the protocol's messages (adjacency lists, candidate stars) are up to
//! `Θ(Δ)` words, and CONGEST allows only `O(1)` words per edge per
//! round, so each logical round is emulated by `Θ(Δ)` physical rounds.
//!
//! [`Fragmented`] makes that claim executable for *any* protocol: it
//! wraps a [`Protocol`] and runs each of its logical rounds as a
//! *super-round* of physical rounds, each physical message carrying at
//! most `cap` payload words (plus one framing word). All nodes advance
//! super-rounds in lockstep after enough physical rounds to flush the
//! largest outstanding fragment queue; the required count is known to
//! every node in advance via the `slots` schedule (here: a fixed
//! per-super-round budget, the standard synchronous emulation).
//!
//! The emulation preserves the wrapped protocol's behavior exactly:
//! the inner protocol sees the same inboxes in the same logical order.

use dsa_graphs::VertexId;

use crate::simulator::{Envelope, Outbox, Protocol, RoundCtx};
use crate::Word;

/// A CONGEST emulation of an arbitrary protocol; see the module docs.
#[derive(Clone, Debug)]
pub struct Fragmented<P> {
    inner: P,
    /// Payload words allowed per physical message.
    cap: usize,
    /// Physical rounds per logical round. Must upper-bound
    /// `ceil(max_message_words / cap) + 1`; the run panics otherwise,
    /// because silently deferring traffic would break lockstep.
    slots: usize,
}

impl<P> Fragmented<P> {
    /// Wraps `inner` with `cap` payload words per physical message and
    /// `slots` physical rounds per logical round.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0` or `slots == 0`.
    pub fn new(inner: P, cap: usize, slots: usize) -> Self {
        assert!(cap > 0, "cap must be positive");
        assert!(slots > 0, "slots must be positive");
        Fragmented { inner, cap, slots }
    }

    /// The physical rounds one logical round costs.
    pub fn slots(&self) -> usize {
        self.slots
    }
}

/// Node state for [`Fragmented`].
#[derive(Debug)]
pub struct FragmentedNode<N> {
    inner: N,
    /// Fragments awaiting transmission: per neighbor, per logical
    /// message, remaining payload chunks.
    queue: Vec<(VertexId, Vec<Vec<Word>>)>,
    /// Reassembly buffers per sender: (current partial, completed).
    partial: Vec<(VertexId, Vec<Word>, usize)>,
    assembled: Vec<Envelope>,
}

impl<P: Protocol> Fragmented<P> {
    fn flush(&self, node: &mut FragmentedNode<P::Node>, out: &mut Outbox) {
        for (to, msgs) in &mut node.queue {
            if let Some(chunk) = msgs.first_mut() {
                // Frame: [remaining_after_this_chunk, payload...]
                let take = chunk.len().min(self.cap);
                let rest: Vec<Word> = chunk.split_off(take);
                let mut frame = Vec::with_capacity(take + 1);
                frame.push(rest.len() as Word);
                frame.extend(chunk.iter().copied());
                *chunk = rest;
                out.send(*to, frame);
                if chunk.is_empty() {
                    msgs.remove(0);
                }
            }
        }
        node.queue.retain(|(_, msgs)| !msgs.is_empty());
    }
}

impl<P: Protocol> Protocol for Fragmented<P> {
    type Node = FragmentedNode<P::Node>;

    fn init(&self, ctx: &mut RoundCtx<'_>) -> Self::Node {
        FragmentedNode {
            inner: self.inner.init(ctx),
            queue: Vec::new(),
            partial: Vec::new(),
            assembled: Vec::new(),
        }
    }

    fn round(&self, node: &mut Self::Node, ctx: &mut RoundCtx<'_>, out: &mut Outbox) {
        // Reassemble incoming fragments.
        for env in ctx.inbox {
            let remaining = env.words[0] as usize;
            let payload = &env.words[1..];
            let slot = node
                .partial
                .iter_mut()
                .find(|(from, _, _)| *from == env.from);
            match slot {
                Some((_, buf, _)) => buf.extend_from_slice(payload),
                None => {
                    node.partial.push((env.from, payload.to_vec(), 0));
                }
            }
            if remaining == 0 {
                let pos = node
                    .partial
                    .iter()
                    .position(|(from, _, _)| *from == env.from)
                    .expect("just touched");
                let (from, words, _) = node.partial.remove(pos);
                node.assembled.push(Envelope { from, words });
            }
        }

        let phase = (ctx.round - 1) % self.slots as u64;
        if phase == 0 {
            // Logical round boundary: everything from the previous
            // super-round must have been flushed and reassembled.
            assert!(
                node.queue.is_empty() && node.partial.is_empty(),
                "slots = {} too small for the wrapped protocol's messages",
                self.slots
            );
            let mut logical_inbox = std::mem::take(&mut node.assembled);
            logical_inbox.sort_by_key(|e| e.from);
            let mut inner_out = Outbox::default();
            let logical_round = (ctx.round - 1) / self.slots as u64 + 1;
            let mut inner_ctx = RoundCtx {
                me: ctx.me,
                n: ctx.n,
                neighbors: ctx.neighbors,
                round: logical_round,
                inbox: &logical_inbox,
                rng: ctx.rng,
            };
            self.inner
                .round(&mut node.inner, &mut inner_ctx, &mut inner_out);
            // Queue the logical messages as fragment lists.
            for (to, words) in inner_out.into_messages() {
                match node.queue.iter_mut().find(|(t, _)| *t == to) {
                    Some((_, msgs)) => msgs.push(words),
                    None => node.queue.push((to, vec![words])),
                }
            }
        }
        self.flush(node, out);
    }

    fn is_done(&self, node: &Self::Node) -> bool {
        self.inner.is_done(&node.inner)
            && node.queue.is_empty()
            && node.partial.is_empty()
            && node.assembled.is_empty()
    }
}

impl<P> Fragmented<P> {
    /// Access the wrapped node state (e.g. to read protocol outputs
    /// after a run).
    pub fn inner_node<N>(node: &FragmentedNode<N>) -> &N {
        &node.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, Simulator};
    use dsa_graphs::Graph;

    /// Each vertex sends its full neighbor list (Θ(Δ) words) once and
    /// records what it hears — a miniature of the spanner protocol's
    /// phase-0 message.
    struct BigHello;

    #[derive(Debug)]
    struct Node {
        heard: Vec<(VertexId, Vec<Word>)>,
        done: bool,
    }

    impl Protocol for BigHello {
        type Node = Node;
        fn init(&self, _ctx: &mut RoundCtx<'_>) -> Node {
            Node {
                heard: Vec::new(),
                done: false,
            }
        }
        fn round(&self, node: &mut Node, ctx: &mut RoundCtx<'_>, out: &mut Outbox) {
            for env in ctx.inbox {
                node.heard.push((env.from, env.words.clone()));
            }
            if ctx.round == 1 {
                let list: Vec<Word> = ctx.neighbors.iter().map(|&u| u as Word).collect();
                out.broadcast(ctx.neighbors, list);
            } else {
                node.done = true;
            }
        }
        fn is_done(&self, node: &Node) -> bool {
            node.done
        }
    }

    #[test]
    fn fragmented_reproduces_local_messages() {
        let g = dsa_graphs::gen::complete(8);
        let net = Network::from_graph(&g);

        // Plain LOCAL run.
        let local = Simulator::new(&net, BigHello).run(100);
        assert!(local.completed);
        assert_eq!(local.metrics.max_message_words, 7);

        // CONGEST emulation: cap 2 payload words, Δ/2 + 2 slots.
        let frag = Fragmented::new(BigHello, 2, 6);
        let run = Simulator::new(&net, frag).bandwidth_cap_words(3).run(1000);
        assert!(run.completed);
        assert_eq!(run.metrics.cap_violations, Some(0));
        assert!(run.metrics.max_message_words <= 3);

        // Every node heard exactly the same logical messages.
        for (v, node) in run.nodes.iter().enumerate() {
            let mut got = node.inner.heard.clone();
            got.sort();
            let mut want = local.nodes[v].heard.clone();
            want.sort();
            assert_eq!(got, want, "vertex {v}");
        }
        // And paid the slot factor in rounds.
        assert!(run.metrics.rounds >= 2 * local.metrics.rounds);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn insufficient_slots_panic() {
        let g = dsa_graphs::gen::complete(10);
        let net = Network::from_graph(&g);
        // 9-word messages, cap 2 => needs 5 slots; give 2.
        let frag = Fragmented::new(BigHello, 2, 2);
        let _ = Simulator::new(&net, frag).run(1000);
    }

    #[test]
    fn empty_messages_pass_through() {
        struct Ping;
        impl Protocol for Ping {
            type Node = bool;
            fn init(&self, _ctx: &mut RoundCtx<'_>) -> bool {
                false
            }
            fn round(&self, node: &mut bool, ctx: &mut RoundCtx<'_>, out: &mut Outbox) {
                if ctx.round == 1 {
                    out.broadcast(ctx.neighbors, vec![]);
                } else {
                    *node = !ctx.inbox.is_empty() || ctx.neighbors.is_empty();
                }
            }
            fn is_done(&self, node: &bool) -> bool {
                *node
            }
        }
        let g = Graph::from_edges(2, [(0, 1)]);
        let net = Network::from_graph(&g);
        let run = Simulator::new(&net, Fragmented::new(Ping, 1, 2)).run(100);
        assert!(run.completed);
        assert!(run.nodes.iter().all(|n| *Fragmented::<Ping>::inner_node(n)));
    }
}
