//! Word-level traffic accounting for simulator runs, plus the shared
//! [`LatencyRecorder`] higher layers (the `dsa-service` serving
//! subsystem) reuse instead of duplicating their own percentile math.

/// Traffic statistics for a simulator run.
///
/// A *word* stands for `Θ(log n)` bits, the CONGEST message unit: a
/// message of `w` words corresponds to `w · ⌈log₂ n⌉` bits. A protocol
/// is CONGEST-compatible if `max_message_words` is a constant
/// independent of the input; a LOCAL-only protocol (such as the
/// 2-spanner algorithm of Section 4, whose direct CONGEST
/// implementation costs an `O(Δ)` factor) will show
/// `max_message_words = Θ(Δ)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Rounds actually executed.
    pub rounds: u64,
    /// Total number of messages sent.
    pub total_messages: u64,
    /// Total number of words sent.
    pub total_words: u64,
    /// The largest single message, in words.
    pub max_message_words: usize,
    /// For each round, the largest message sent in that round, in words.
    pub per_round_max_words: Vec<usize>,
    /// Number of messages exceeding the configured bandwidth cap, if a
    /// cap was set (`None` means no cap configured).
    pub cap_violations: Option<u64>,
    /// Words carried by messages crossing the planted cut, if a cut was
    /// configured.
    pub cut_words: Option<u64>,
    /// Messages crossing the planted cut, if a cut was configured.
    pub cut_messages: Option<u64>,
}

impl Metrics {
    /// Bits crossing the planted cut, assuming each word is
    /// `⌈log₂ n⌉` bits (`None` when no cut was configured).
    pub fn cut_bits(&self, n: usize) -> Option<u64> {
        let bits_per_word = usize::BITS - (n.max(2) - 1).leading_zeros();
        self.cut_words.map(|w| w * bits_per_word as u64)
    }

    /// Average words per message (0 when nothing was sent).
    pub fn mean_message_words(&self) -> f64 {
        if self.total_messages == 0 {
            0.0
        } else {
            self.total_words as f64 / self.total_messages as f64
        }
    }
}

/// A sample recorder with percentile queries.
///
/// Samples are microseconds by convention (the unit is not enforced).
/// Percentiles use the nearest-rank definition, so every reported
/// value is an actually observed sample. [`LatencyRecorder::bounded`]
/// caps memory with a ring buffer — long-running servers keep the
/// most recent window instead of growing per recorded job forever.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyRecorder {
    samples_us: Vec<u64>,
    /// Ring cursor (next overwrite position) when bounded.
    cursor: usize,
    /// Maximum retained samples; 0 means unbounded.
    capacity: usize,
}

impl LatencyRecorder {
    /// An empty, unbounded recorder.
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// An empty recorder retaining only the most recent `capacity`
    /// samples (ring buffer).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity >= 1, "bounded recorder needs capacity >= 1");
        LatencyRecorder {
            samples_us: Vec::new(),
            cursor: 0,
            capacity,
        }
    }

    /// Records one sample, overwriting the oldest retained sample once
    /// a bounded recorder is full.
    pub fn record_micros(&mut self, us: u64) {
        if self.capacity > 0 && self.samples_us.len() == self.capacity {
            self.samples_us[self.cursor] = us;
            self.cursor = (self.cursor + 1) % self.capacity;
        } else {
            self.samples_us.push(us);
        }
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// Whether nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// The nearest-rank `q`-quantile (`0.0 <= q <= 1.0`), or `None`
    /// when no samples were recorded.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or NaN.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.samples_us.is_empty() {
            return None;
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// The median sample.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// The 95th-percentile sample.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// Mean of the samples (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.samples_us.is_empty() {
            0.0
        } else {
            self.samples_us.iter().sum::<u64>() as f64 / self.samples_us.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles_use_nearest_rank() {
        let mut rec = LatencyRecorder::new();
        assert_eq!(rec.p50(), None);
        assert_eq!(rec.mean_micros(), 0.0);
        // Record 1..=100 out of order.
        for i in (1..=100u64).rev() {
            rec.record_micros(i);
        }
        assert_eq!(rec.len(), 100);
        assert_eq!(rec.p50(), Some(50));
        assert_eq!(rec.p95(), Some(95));
        assert_eq!(rec.quantile(0.0), Some(1));
        assert_eq!(rec.quantile(1.0), Some(100));
        assert!((rec.mean_micros() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn latency_single_sample() {
        let mut rec = LatencyRecorder::new();
        rec.record_micros(7);
        assert_eq!(rec.p50(), Some(7));
        assert_eq!(rec.p95(), Some(7));
    }

    #[test]
    fn bounded_recorder_keeps_the_recent_window() {
        let mut rec = LatencyRecorder::bounded(10);
        for i in 1..=100u64 {
            rec.record_micros(i);
        }
        // Only 91..=100 retained.
        assert_eq!(rec.len(), 10);
        assert_eq!(rec.quantile(0.0), Some(91));
        assert_eq!(rec.quantile(1.0), Some(100));
        assert_eq!(rec.p50(), Some(95));
        assert!((rec.mean_micros() - 95.5).abs() < 1e-12);
    }

    #[test]
    fn cut_bits_uses_log_n_words() {
        let m = Metrics {
            cut_words: Some(10),
            ..Metrics::default()
        };
        // n = 1024 -> 10 bits per word.
        assert_eq!(m.cut_bits(1024), Some(100));
        // n = 1025 -> 11 bits per word.
        assert_eq!(m.cut_bits(1025), Some(110));
        let none = Metrics::default();
        assert_eq!(none.cut_bits(16), None);
    }

    #[test]
    fn mean_words() {
        let m = Metrics {
            total_messages: 4,
            total_words: 10,
            ..Metrics::default()
        };
        assert!((m.mean_message_words() - 2.5).abs() < 1e-12);
        assert_eq!(Metrics::default().mean_message_words(), 0.0);
    }
}
