//! Word-level traffic accounting for simulator runs.

/// Traffic statistics for a simulator run.
///
/// A *word* stands for `Θ(log n)` bits, the CONGEST message unit: a
/// message of `w` words corresponds to `w · ⌈log₂ n⌉` bits. A protocol
/// is CONGEST-compatible if `max_message_words` is a constant
/// independent of the input; a LOCAL-only protocol (such as the
/// 2-spanner algorithm of Section 4, whose direct CONGEST
/// implementation costs an `O(Δ)` factor) will show
/// `max_message_words = Θ(Δ)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Rounds actually executed.
    pub rounds: u64,
    /// Total number of messages sent.
    pub total_messages: u64,
    /// Total number of words sent.
    pub total_words: u64,
    /// The largest single message, in words.
    pub max_message_words: usize,
    /// For each round, the largest message sent in that round, in words.
    pub per_round_max_words: Vec<usize>,
    /// Number of messages exceeding the configured bandwidth cap, if a
    /// cap was set (`None` means no cap configured).
    pub cap_violations: Option<u64>,
    /// Words carried by messages crossing the planted cut, if a cut was
    /// configured.
    pub cut_words: Option<u64>,
    /// Messages crossing the planted cut, if a cut was configured.
    pub cut_messages: Option<u64>,
}

impl Metrics {
    /// Bits crossing the planted cut, assuming each word is
    /// `⌈log₂ n⌉` bits (`None` when no cut was configured).
    pub fn cut_bits(&self, n: usize) -> Option<u64> {
        let bits_per_word = usize::BITS - (n.max(2) - 1).leading_zeros();
        self.cut_words.map(|w| w * bits_per_word as u64)
    }

    /// Average words per message (0 when nothing was sent).
    pub fn mean_message_words(&self) -> f64 {
        if self.total_messages == 0 {
            0.0
        } else {
            self.total_words as f64 / self.total_messages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_bits_uses_log_n_words() {
        let m = Metrics {
            cut_words: Some(10),
            ..Metrics::default()
        };
        // n = 1024 -> 10 bits per word.
        assert_eq!(m.cut_bits(1024), Some(100));
        // n = 1025 -> 11 bits per word.
        assert_eq!(m.cut_bits(1025), Some(110));
        let none = Metrics::default();
        assert_eq!(none.cut_bits(16), None);
    }

    #[test]
    fn mean_words() {
        let m = Metrics {
            total_messages: 4,
            total_words: 10,
            ..Metrics::default()
        };
        assert!((m.mean_message_words() - 2.5).abs() < 1e-12);
        assert_eq!(Metrics::default().mean_message_words(), 0.0);
    }
}
