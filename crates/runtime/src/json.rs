//! A dependency-free JSON encoder/decoder for the serving frontends.
//!
//! The build environment is offline, so — like the hand-rolled wire
//! protocol in `dsa-service` — this module implements the subset of
//! JSON the workspace needs itself: a [`Json`] value tree, a strict
//! recursive-descent parser ([`Json::parse`]), and a deterministic
//! encoder ([`Json::encode`]).
//!
//! Design points that matter to the serving layer:
//!
//! * **Integers stay exact.** JSON numbers without a fraction or
//!   exponent are kept as [`Json::U64`] / [`Json::I64`], never routed
//!   through `f64` — engine seeds are arbitrary `u64`s and must
//!   round-trip bit-exactly. Only numbers written with `.`/`e` (or
//!   integers beyond 64 bits) become [`Json::F64`].
//! * **Encoding is deterministic.** Objects preserve insertion order
//!   (they are vectors of pairs, not hash maps), so the same value
//!   tree always encodes to the same bytes — the HTTP facade's
//!   cache-hit byte-identity guarantee rests on this.
//! * **Parsing is bounded.** Nesting is capped at [`MAX_DEPTH`] so a
//!   hostile body of `[[[[…` cannot overflow the stack; input size is
//!   the caller's bound (the HTTP layer caps bodies before parsing).
//!
//! # Example
//!
//! ```
//! use dsa_runtime::json::Json;
//!
//! let v = Json::parse(r#"{"seed": 18446744073709551615, "ok": true}"#).unwrap();
//! assert_eq!(v.get("seed").and_then(Json::as_u64), Some(u64::MAX));
//! assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
//! let back = v.encode();
//! assert_eq!(Json::parse(&back).unwrap(), v);
//! ```

use std::fmt;

/// Maximum nesting depth [`Json::parse`] accepts (arrays + objects).
pub const MAX_DEPTH: usize = 128;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer written without fraction or exponent.
    U64(u64),
    /// A negative integer written without fraction or exponent.
    I64(i64),
    /// Any other number (fraction, exponent, or beyond 64-bit range).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up a key in an object; `None` for non-objects and missing
    /// keys. First occurrence wins if the input repeated a key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(x) => Some(x),
            Json::I64(x) => u64::try_from(x).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::I64(x) => Some(x),
            Json::U64(x) => i64::try_from(x).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert; strings do not).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::F64(x) => Some(x),
            Json::U64(x) => Some(x as f64),
            Json::I64(x) => Some(x as f64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing content after JSON value"));
        }
        Ok(value)
    }

    /// Encodes the value as compact JSON (no whitespace), preserving
    /// object key order. Deterministic: equal trees encode to equal
    /// bytes.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(x) => out.push_str(&x.to_string()),
            Json::I64(x) => out.push_str(&x.to_string()),
            Json::F64(x) => {
                // JSON has no NaN/Infinity; map them to null like
                // every lenient encoder does (we never produce them).
                if x.is_finite() {
                    let s = x.to_string();
                    out.push_str(&s);
                    // Keep float-ness explicit so the value re-parses
                    // as F64, not as an integer: `-225.0` must not
                    // encode to `-225`.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.error(format!("unexpected byte `{}`", b as char))),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let start = self.pos;
        // Fast path: no escapes, borrow the span wholesale.
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    // Safe: input is a &str, and the span contains no
                    // escape, so it is valid UTF-8 as-is.
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?
                        .to_string();
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => break,
                b if b < 0x20 => return Err(self.error("raw control character in string")),
                _ => self.pos += 1,
            }
        }
        // Slow path: build the string, decoding escapes.
        let mut out = String::from_utf8(self.bytes[start..self.pos].to_vec())
            .map_err(|_| self.error("invalid UTF-8 in string"))?;
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(self.error(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(b) if b < 0x20 => return Err(self.error("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (1–4 bytes).
                    let span_start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| (b & 0xc0) == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[span_start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.error("unterminated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.error("bad hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            // High surrogate: a low surrogate escape must follow.
            if self.peek() != Some(b'\\') {
                return Err(self.error("lone high surrogate"));
            }
            self.pos += 1;
            if self.peek() != Some(b'u') {
                return Err(self.error("lone high surrogate"));
            }
            self.pos += 1;
            let lo = self.hex4()?;
            if !(0xdc00..0xe000).contains(&lo) {
                return Err(self.error("bad low surrogate"));
            }
            let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
            char::from_u32(cp).ok_or_else(|| self.error("bad surrogate pair"))
        } else if (0xdc00..0xe000).contains(&hi) {
            Err(self.error("lone low surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.error("bad \\u escape"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part (JSON forbids leading zeros like `042`).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("malformed number")),
        }
        if self
            .bytes
            .get(start + usize::from(self.bytes[start] == b'-'))
            == Some(&b'0')
            && self
                .bytes
                .get(start + usize::from(self.bytes[start] == b'-') + 1)
                .is_some_and(|b| b.is_ascii_digit())
        {
            return Err(self.error("leading zero in number"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(self.error("malformed fraction"));
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(self.error("malformed exponent"));
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans are ASCII");
        if integral {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(v) = rest.parse::<u64>() {
                    if v == 0 {
                        return Ok(Json::U64(0));
                    }
                    if let Ok(neg) = i64::try_from(v).map(|v| -v).or_else(|_| {
                        if v == (i64::MAX as u64) + 1 {
                            Ok(i64::MIN)
                        } else {
                            Err(())
                        }
                    }) {
                        return Ok(Json::I64(neg));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        match text.parse::<f64>() {
            // Rust's f64 parser returns Ok(±inf) on overflow (e.g.
            // `1e999`), but JSON has no non-finite numbers and
            // encode() could not round-trip one — reject instead.
            Ok(v) if v.is_finite() => Ok(Json::F64(v)),
            Ok(_) => Err(self.error("number out of f64 range")),
            Err(_) => Err(self.error("malformed number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Json {
        Json::parse(s).unwrap()
    }

    #[test]
    fn scalars_roundtrip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::U64(0)),
            ("42", Json::U64(42)),
            ("-7", Json::I64(-7)),
            ("18446744073709551615", Json::U64(u64::MAX)),
            ("-9223372036854775808", Json::I64(i64::MIN)),
            ("1.5", Json::F64(1.5)),
            ("-2.25e2", Json::F64(-225.0)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(parse(text), value, "{text}");
            assert_eq!(parse(&value.encode()), value, "{text} re-parse");
        }
    }

    #[test]
    fn u64_seeds_stay_exact() {
        // The motivating case: u64::MAX is not representable in f64.
        let v = parse("{\"seed\":18446744073709551615}");
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(v.encode(), "{\"seed\":18446744073709551615}");
    }

    #[test]
    fn containers_preserve_order() {
        let v = parse(r#"{"b": [1, 2, {"x": null}], "a": 3}"#);
        assert_eq!(
            v.encode(),
            r#"{"b":[1,2,{"x":null}],"a":3}"#,
            "insertion order survives the roundtrip"
        );
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(
            v.get("b").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn string_escapes_roundtrip() {
        for (text, want) in [
            ("\"a\\\"b\"", "a\"b"),
            ("\"a\\\\b\"", "a\\b"),
            ("\"a\\/b\"", "a/b"),
            ("\"\\n\\r\\t\\b\\f\"", "\n\r\t\u{08}\u{0c}"),
            ("\"\\u0041\"", "A"),
            ("\"\\ud83e\\udd80\"", "\u{1f980}"),
            ("\"snøfall\"", "snøfall"),
        ] {
            let v = parse(text);
            assert_eq!(v.as_str(), Some(want), "{text}");
            assert_eq!(parse(&v.encode()).as_str(), Some(want), "{text} re-parse");
        }
    }

    #[test]
    fn control_chars_encode_as_escapes() {
        let v = Json::Str("a\u{01}b\nc".into());
        assert_eq!(v.encode(), "\"a\\u0001b\\nc\"");
        assert_eq!(parse(&v.encode()), v);
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in [
            "",
            "   ",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\":}",
            "{a:1}",
            "tru",
            "nulll",
            "1 2",
            "042",
            "-",
            "1.",
            "1e",
            "\"abc",
            "\"a\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\ud800\\u0041\"",
            "\"a\nb\"",
            "[1],",
            "1e999",
            "-1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&deep_ok).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = Json::parse(&too_deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn duplicate_keys_first_wins_on_get() {
        let v = parse(r#"{"k":1,"k":2}"#);
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn nonfinite_floats_encode_as_null() {
        assert_eq!(Json::F64(f64::NAN).encode(), "null");
        assert_eq!(Json::F64(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn accessor_conversions() {
        assert_eq!(Json::U64(7).as_i64(), Some(7));
        assert_eq!(Json::I64(-1).as_u64(), None);
        assert_eq!(Json::U64(u64::MAX).as_i64(), None);
        assert_eq!(Json::U64(3).as_f64(), Some(3.0));
        assert_eq!(Json::Str("3".into()).as_u64(), None);
        assert_eq!(Json::Null.get("k"), None);
    }
}
