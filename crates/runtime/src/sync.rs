//! Checked locking: [`OrderedMutex`], a mutex wrapper that enforces a
//! global lock-acquisition order at runtime under debug assertions.
//!
//! The serving path's panic-freedom contract has a deadlock-shaped
//! blind spot: a refactor that nests two mutexes in opposite orders on
//! two code paths compiles, passes single-threaded tests, and wedges
//! under load. `dsa-lint`'s L-series rules prove the *static* call
//! graph acquires locks in rank order; this module is the dynamic
//! teammate that validates the same contract on every path the tests
//! actually execute.
//!
//! Every lock is constructed with a name and a numeric **rank** (the
//! workspace inventory lives in `lint.toml`, which `dsa-lint` checks
//! against these construction sites). A thread may only acquire a lock
//! whose rank is *strictly greater* than every lock it already holds;
//! under `debug_assertions` a violation panics immediately with both
//! lock names and the full per-thread acquisition stack — turning a
//! once-in-a-blue-moon deadlock into a deterministic test failure. In
//! release builds the bookkeeping compiles out and `lock()` is a plain
//! `Mutex::lock`.
//!
//! Poisoning is absorbed rather than propagated: the serving contract
//! is "degrade, never die", so a panic on one worker thread must not
//! cascade `PoisonError` panics through every other thread that shares
//! a lock. `lock()` therefore returns the guard directly — there is no
//! `.unwrap()` for `dsa-lint`'s P-series rules to flag.
//!
//! Condvar integration: `std::sync::Condvar` waits on a
//! `std::sync::MutexGuard`, so [`OrderedMutexGuard`] exposes
//! [`wait_on`](OrderedMutexGuard::wait_on) /
//! [`wait_timeout_on`](OrderedMutexGuard::wait_timeout_on), which
//! release and reacquire the underlying guard without disturbing the
//! thread's acquisition stack (blocking in a wait holds no *other*
//! lock, so the stack entry stays accurate on both sides of the wake).

use std::cell::RefCell;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

thread_local! {
    /// Ranks (and names, for diagnostics) of the ordered locks this
    /// thread currently holds, in acquisition order.
    static HELD: RefCell<Vec<(u32, &'static str)>> = const { RefCell::new(Vec::new()) };
}

/// A [`Mutex`] with a declared place in the workspace's global lock
/// order. See the module docs for the contract.
#[derive(Debug)]
pub struct OrderedMutex<T> {
    name: &'static str,
    rank: u32,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wraps `value` in a mutex named `name` at position `rank` in the
    /// global acquisition order. Ranks need not be distinct globally,
    /// but two locks a thread ever holds *simultaneously* must have
    /// distinct, correctly ordered ranks (equal ranks count as a
    /// violation — self-deadlock looks exactly like reacquisition).
    pub const fn new(name: &'static str, rank: u32, value: T) -> Self {
        OrderedMutex {
            name,
            rank,
            inner: Mutex::new(value),
        }
    }

    /// The lock's declared name (as listed in the lint inventory).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The lock's declared rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Acquires the lock, blocking the current thread.
    ///
    /// # Panics
    ///
    /// Under `debug_assertions`, panics if this thread already holds a
    /// lock of equal or greater rank (an ordering violation — the
    /// interleaving that deadlocks in release). The check runs *before*
    /// blocking, so the violating path is reported even when the lock
    /// happens to be free.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        if cfg!(debug_assertions) {
            self.check_order_and_push();
        }
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        OrderedMutexGuard {
            lock: self,
            inner: Some(inner),
        }
    }

    /// Mutable access through exclusive ownership; no locking, no
    /// ordering interaction (holding `&mut self` proves no guard
    /// exists).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    fn check_order_and_push(&self) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(top_rank, top_name)) = held.last() {
                if self.rank <= top_rank {
                    let stack: Vec<String> =
                        held.iter().map(|(r, n)| format!("{n}(rank {r})")).collect();
                    panic!(
                        "lock-order violation: acquiring `{}` (rank {}) while holding \
                         `{top_name}` (rank {top_rank}); held stack: [{}]. The workspace \
                         lock order is declared in lint.toml and checked by dsa-lint.",
                        self.name,
                        self.rank,
                        stack.join(" -> "),
                    );
                }
            }
            held.push((self.rank, self.name));
        });
    }

    fn pop_held(&self) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(i) = held
                .iter()
                .rposition(|&(r, n)| r == self.rank && n == self.name)
            {
                held.remove(i);
            }
        });
    }
}

/// RAII guard for [`OrderedMutex`]; releases the lock (and the
/// thread's acquisition-stack entry) on drop.
#[derive(Debug)]
pub struct OrderedMutexGuard<'a, T> {
    lock: &'a OrderedMutex<T>,
    /// Always `Some` while the guard is live; taken only transiently
    /// inside the condvar bridges below.
    inner: Option<MutexGuard<'a, T>>,
}

impl<'a, T> OrderedMutexGuard<'a, T> {
    /// Releases the lock, waits on `cv`, and reacquires — the
    /// [`Condvar::wait`] bridge. The acquisition-stack entry is kept:
    /// a blocked waiter holds no other lock, and on wake the lock is
    /// held again exactly as before.
    pub fn wait_on(mut self, cv: &Condvar) -> Self {
        if let Some(g) = self.inner.take() {
            self.inner = Some(cv.wait(g).unwrap_or_else(PoisonError::into_inner));
        }
        self
    }

    /// [`Condvar::wait_timeout`] bridge; see [`wait_on`](Self::wait_on).
    pub fn wait_timeout_on(mut self, cv: &Condvar, dur: Duration) -> (Self, WaitTimeoutResult) {
        // A taken-out guard is unreachable (`inner` is only `None`
        // transiently inside these bridges), but degrade to a plain
        // reacquire rather than panic if that invariant ever breaks.
        let g = match self.inner.take() {
            Some(g) => g,
            None => {
                let g = self
                    .lock
                    .inner
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                self.inner = Some(g);
                return (self, timed_out_result(cv));
            }
        };
        let (g, timed_out) = match cv.wait_timeout(g, dur) {
            Ok(pair) => pair,
            Err(poisoned) => poisoned.into_inner(),
        };
        self.inner = Some(g);
        (self, timed_out)
    }
}

/// Manufactures a `WaitTimeoutResult` (the type has no public
/// constructor) for the unreachable guard-less branch above: a
/// zero-length wait on a throwaway mutex that cannot be poisoned.
fn timed_out_result(cv: &Condvar) -> WaitTimeoutResult {
    let m = Mutex::new(());
    let g = m.lock().unwrap_or_else(PoisonError::into_inner);
    let (g, r) = match cv.wait_timeout(g, Duration::from_millis(0)) {
        Ok(pair) => pair,
        Err(p) => p.into_inner(),
    };
    drop(g);
    r
}

impl<T> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            // `inner` is `None` only transiently inside the condvar
            // bridges, which hold `self` by value; a live shared
            // reference proves it is `Some`.
            None => unreachable!("OrderedMutexGuard dereferenced while mid-wait"),
        }
    }
}

impl<T> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("OrderedMutexGuard dereferenced while mid-wait"),
        }
    }
}

impl<T> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        if cfg!(debug_assertions) {
            self.lock.pop_held();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn guards_data_like_a_mutex() {
        let m = Arc::new(OrderedMutex::new("counter", 10, 0u64));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn ascending_ranks_are_free() {
        let a = OrderedMutex::new("a", 10, ());
        let b = OrderedMutex::new("b", 20, ());
        let c = OrderedMutex::new("c", 30, ());
        let ga = a.lock();
        let gb = b.lock();
        let gc = c.lock();
        drop(gc);
        drop(gb);
        drop(ga);
        // Releasing resets the stack: the same locks again, still fine.
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[test]
    fn out_of_order_drop_keeps_the_stack_consistent() {
        let a = OrderedMutex::new("a", 10, ());
        let b = OrderedMutex::new("b", 20, ());
        let c = OrderedMutex::new("c", 30, ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // released before b — stack must not lose b's entry
        let gc = c.lock();
        drop(gb);
        drop(gc);
        let _ga = a.lock();
    }

    /// The tentpole contract: a reversed two-lock acquisition panics
    /// under debug assertions and is free (a plain deadlock-prone
    /// mutex pair, but this test never contends) under release.
    #[test]
    fn reversed_acquisition_panics_under_debug_assertions() {
        let result = std::thread::spawn(|| {
            let low = OrderedMutex::new("low", 10, ());
            let high = OrderedMutex::new("high", 20, ());
            let _g_high = high.lock();
            let _g_low = low.lock(); // rank 10 while holding rank 20
        })
        .join();
        if cfg!(debug_assertions) {
            let err = result.expect_err("reversed order must panic under debug assertions");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "non-string panic payload".to_string());
            assert!(
                msg.contains("lock-order violation")
                    && msg.contains("`low` (rank 10)")
                    && msg.contains("`high` (rank 20)"),
                "unexpected panic message: {msg}"
            );
        } else {
            result.expect("release builds skip the ordering check");
        }
    }

    #[test]
    fn equal_ranks_count_as_a_violation() {
        let result = std::thread::spawn(|| {
            let a = OrderedMutex::new("a", 10, ());
            let b = OrderedMutex::new("b", 10, ());
            let _ga = a.lock();
            let _gb = b.lock();
        })
        .join();
        if cfg!(debug_assertions) {
            result.expect_err("equal ranks must panic under debug assertions");
        } else {
            result.expect("release builds skip the ordering check");
        }
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_panicking() {
        let m = Arc::new(OrderedMutex::new("poisoned", 10, 7u64));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 7, "data survives a poisoning panic");
    }

    #[test]
    fn condvar_wait_bridges_preserve_the_lock() {
        let pair = Arc::new((OrderedMutex::new("gate", 10, false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (m, cv) = (&pair.0, &pair.1);
                let mut g = m.lock();
                while !*g {
                    g = g.wait_on(cv);
                }
                *g
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        *pair.0.lock() = true;
        pair.1.notify_all();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn condvar_wait_timeout_times_out() {
        let m = OrderedMutex::new("gate", 10, ());
        let cv = Condvar::new();
        let g = m.lock();
        let (g, result) = g.wait_timeout_on(&cv, Duration::from_millis(5));
        assert!(result.timed_out());
        drop(g);
        // The lock is still usable (and the stack balanced) after a
        // timed-out wait.
        let _g = m.lock();
    }
}
