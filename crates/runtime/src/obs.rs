//! Dependency-free observability primitives: a leveled structured
//! logger, per-job trace ids, and a bounded in-memory "flight
//! recorder" for spans/events.
//!
//! Everything here is std-only and designed for hot paths:
//!
//! * **Logger** — a process-wide maximum [`Level`] stored in one
//!   atomic; a suppressed call costs a single relaxed load. Emitted
//!   lines are `key=value` structured text on stderr
//!   (`ts=… level=… target=… msg=… extra=…`), so operators can grep
//!   them and log shippers can parse them without a format schema.
//! * **Trace ids** — [`next_trace_id`] hands out process-unique
//!   non-zero 64-bit ids (time-seeded, counter-mixed). The service
//!   stamps one on every submitted job and threads it through cache,
//!   store, engine, and delivery events.
//! * **Flight recorder** — [`FlightRecorder`] keeps the last *N*
//!   [`TraceEvent`]s in a fixed-capacity ring behind one mutex whose
//!   critical section is a push + possible pop (no allocation beyond
//!   the event itself). Overflow evicts the oldest event and counts it
//!   in [`FlightRecorder::dropped`]; recording never blocks on I/O.
//!   Events export as JSONL (one [`crate::json::Json`] object per
//!   line) for `spanner-serve --trace-dir`.
//!
//! None of this is wired into the engine's deterministic core: timing
//! and tracing observe results, they never feed back into RNG streams
//! or merge order.

use crate::json::Json;
use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Log severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The process cannot do what was asked of it.
    Error = 0,
    /// Something is degraded but the process keeps going.
    Warn = 1,
    /// Normal operational milestones (default level).
    Info = 2,
    /// Detail useful when diagnosing a specific problem.
    Debug = 3,
    /// Per-event firehose; only for short captures.
    Trace = 4,
}

impl Level {
    /// The lowercase name used in log lines and `--log-level`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level {other:?} (expected error|warn|info|debug|trace)"
            )),
        }
    }
}

/// Process-wide maximum level; calls above it are suppressed.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the process-wide maximum log level.
pub fn set_log_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Returns the current process-wide maximum log level.
pub fn log_level() -> Level {
    Level::from_u8(MAX_LEVEL.load(Ordering::Relaxed))
}

/// Whether a message at `level` would currently be emitted.
pub fn log_enabled(level: Level) -> bool {
    level <= log_level()
}

/// Emits one structured log line on stderr if `level` is enabled.
///
/// `fields` are appended as `key=value` pairs after the message;
/// values containing spaces, quotes, or `=` are quoted and escaped so
/// every line stays machine-splittable.
pub fn log(level: Level, target: &str, msg: &str, fields: &[(&str, &dyn fmt::Display)]) {
    if !log_enabled(level) {
        return;
    }
    eprintln!("{}", format_line(level, target, msg, fields));
}

/// [`log`] at [`Level::Error`].
pub fn error(target: &str, msg: &str, fields: &[(&str, &dyn fmt::Display)]) {
    log(Level::Error, target, msg, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(target: &str, msg: &str, fields: &[(&str, &dyn fmt::Display)]) {
    log(Level::Warn, target, msg, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(target: &str, msg: &str, fields: &[(&str, &dyn fmt::Display)]) {
    log(Level::Info, target, msg, fields);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(target: &str, msg: &str, fields: &[(&str, &dyn fmt::Display)]) {
    log(Level::Debug, target, msg, fields);
}

fn format_line(
    level: Level,
    target: &str,
    msg: &str,
    fields: &[(&str, &dyn fmt::Display)],
) -> String {
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO);
    let mut line = format!(
        "ts={}.{:03} level={} target={} msg={}",
        now.as_secs(),
        now.subsec_millis(),
        level,
        quote_value(target),
        quote_value(msg),
    );
    for (key, value) in fields {
        line.push(' ');
        line.push_str(key);
        line.push('=');
        line.push_str(&quote_value(&value.to_string()));
    }
    line
}

/// Quotes a `key=value` value if it would break token splitting.
fn quote_value(raw: &str) -> String {
    let needs_quotes = raw.is_empty() || raw.contains([' ', '"', '=', '\\', '\n', '\r', '\t']);
    if !needs_quotes {
        return raw.to_string();
    }
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

/// Monotone counter mixed into trace ids so two ids never collide
/// within a process even when the clock is coarse.
static TRACE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Returns a process-unique, non-zero 64-bit trace id.
pub fn next_trace_id() -> u64 {
    let count = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_nanos() as u64;
    // splitmix64 finalizer over (time, counter): well-spread ids
    // without any global RNG state.
    let mut z = nanos ^ count.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    z | 1 // zero means "no trace"; never hand it out
}

/// Renders a trace id the way log lines and JSONL traces spell it.
pub fn trace_id_hex(id: u64) -> String {
    format!("{id:016x}")
}

/// One recorded span or point event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// The job this event belongs to (0 = not tied to a job).
    pub trace_id: u64,
    /// Event name, dot-namespaced (`job.submitted`, `engine.run`, …).
    pub name: String,
    /// Microseconds since the recorder was created.
    pub at_us: u64,
    /// Span duration in microseconds; `None` for point events.
    pub dur_us: Option<u64>,
    /// Extra key/value context, in insertion order.
    pub fields: Vec<(String, String)>,
}

/// Default event capacity for [`FlightRecorder::new`] callers that do
/// not have a better number.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded ring of recent [`TraceEvent`]s.
///
/// Recording is a mutex-guarded push (plus a pop when full), so it is
/// cheap enough to sit on the service's request path. When the ring is
/// full the *oldest* event is evicted — a flight recorder keeps the
/// most recent history, not the first.
pub struct FlightRecorder {
    epoch: Instant,
    epoch_unix_us: u64,
    capacity: usize,
    inner: Mutex<Ring>,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        let epoch_unix_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or(Duration::ZERO)
            .as_micros() as u64;
        FlightRecorder {
            epoch: Instant::now(),
            epoch_unix_us,
            capacity,
            inner: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity),
                dropped: 0,
            }),
        }
    }

    /// Microseconds elapsed since the recorder was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records a point event (no duration).
    pub fn event(&self, trace_id: u64, name: &str, fields: Vec<(String, String)>) {
        self.push(TraceEvent {
            trace_id,
            name: name.to_string(),
            at_us: self.now_us(),
            dur_us: None,
            fields,
        });
    }

    /// Records a span that started `dur` ago and just finished.
    pub fn span(&self, trace_id: u64, name: &str, dur: Duration, fields: Vec<(String, String)>) {
        let dur_us = dur.as_micros() as u64;
        let now = self.now_us();
        self.push(TraceEvent {
            trace_id,
            name: name.to_string(),
            at_us: now.saturating_sub(dur_us),
            dur_us: Some(dur_us),
            fields,
        });
    }

    fn push(&self, event: TraceEvent) {
        let mut ring = self.inner.lock().unwrap();
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().events.len()
    }

    /// Whether the ring currently holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Removes and returns all held events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut ring = self.inner.lock().unwrap();
        ring.events.drain(..).collect()
    }

    /// Returns a copy of all held events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.lock().unwrap().events.iter().cloned().collect()
    }

    /// Renders one event as a single-line JSON object.
    ///
    /// Schema: `{"ts_us": <unix µs>, "trace": "<16-hex id>",
    /// "name": "...", "dur_us": <µs, spans only>, "<field>": "..."}`.
    pub fn jsonl_line(&self, event: &TraceEvent) -> String {
        let mut obj = vec![
            (
                "ts_us".to_string(),
                Json::U64(self.epoch_unix_us.saturating_add(event.at_us)),
            ),
            ("trace".to_string(), Json::Str(trace_id_hex(event.trace_id))),
            ("name".to_string(), Json::Str(event.name.clone())),
        ];
        if let Some(dur_us) = event.dur_us {
            obj.push(("dur_us".to_string(), Json::U64(dur_us)));
        }
        for (key, value) in &event.fields {
            obj.push((key.clone(), Json::Str(value.clone())));
        }
        Json::Obj(obj).encode()
    }

    /// Drains all events and renders them as JSONL (one event per
    /// line, trailing newline when non-empty).
    pub fn drain_jsonl(&self) -> String {
        let events = self.drain();
        let mut out = String::new();
        for event in &events {
            out.push_str(&self.jsonl_line(event));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!("info".parse::<Level>().unwrap(), Level::Info);
        assert_eq!("WARN".parse::<Level>().unwrap(), Level::Warn);
        assert_eq!("warning".parse::<Level>().unwrap(), Level::Warn);
        assert!("loud".parse::<Level>().is_err());
        assert!(Level::Error < Level::Warn);
        assert!(Level::Debug < Level::Trace);
        assert_eq!(Level::Trace.to_string(), "trace");
    }

    #[test]
    fn format_line_quotes_only_when_needed() {
        let line = format_line(
            Level::Info,
            "svc",
            "hello world",
            &[("plain", &7u64), ("spaced", &"a b"), ("quoted", &"x\"y")],
        );
        assert!(line.contains("level=info"), "{line}");
        assert!(line.contains("target=svc"), "{line}");
        assert!(line.contains("msg=\"hello world\""), "{line}");
        assert!(line.contains("plain=7"), "{line}");
        assert!(line.contains("spaced=\"a b\""), "{line}");
        assert!(line.contains("quoted=\"x\\\"y\""), "{line}");
        assert!(line.starts_with("ts="), "{line}");
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_trace_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate trace id {id:#x}");
        }
        assert_eq!(trace_id_hex(0xabc).len(), 16);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let rec = FlightRecorder::new(3);
        for i in 0..5u64 {
            rec.event(i + 1, "tick", vec![("i".to_string(), i.to_string())]);
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let events = rec.snapshot();
        // Oldest evicted first: events 3, 4, 5 remain.
        assert_eq!(events[0].trace_id, 3);
        assert_eq!(events[2].trace_id, 5);
        let drained = rec.drain();
        assert_eq!(drained.len(), 3);
        assert!(rec.is_empty());
    }

    #[test]
    fn jsonl_lines_are_valid_json_with_schema_keys() {
        let rec = FlightRecorder::new(8);
        rec.span(
            42,
            "engine.run",
            Duration::from_micros(1500),
            vec![("variant".to_string(), "undirected".to_string())],
        );
        rec.event(42, "job.delivered", vec![]);
        let jsonl = rec.drain_jsonl();
        let lines: Vec<&str> = jsonl.trim_end().lines().collect();
        assert_eq!(lines.len(), 2);
        let span = Json::parse(lines[0]).unwrap();
        assert_eq!(span.get("name").and_then(Json::as_str), Some("engine.run"));
        assert_eq!(span.get("dur_us").and_then(Json::as_u64), Some(1500));
        assert_eq!(
            span.get("trace").and_then(Json::as_str),
            Some(trace_id_hex(42).as_str())
        );
        assert_eq!(
            span.get("variant").and_then(Json::as_str),
            Some("undirected")
        );
        let point = Json::parse(lines[1]).unwrap();
        assert!(point.get("dur_us").is_none());
        assert!(point.get("ts_us").and_then(Json::as_u64).is_some());
    }

    #[test]
    fn span_backdates_start_and_never_underflows() {
        let rec = FlightRecorder::new(8);
        // A duration far longer than the recorder has existed must not
        // panic; at_us saturates at 0.
        rec.span(1, "long", Duration::from_secs(3600), vec![]);
        let events = rec.drain();
        assert_eq!(events[0].at_us, 0);
        assert_eq!(events[0].dur_us, Some(3_600_000_000));
    }
}
