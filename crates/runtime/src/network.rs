//! The communication graph seen by the simulator.

use dsa_graphs::{DiGraph, Graph, VertexId};

/// A communication network: an undirected graph with sorted neighbor
/// lists.
///
/// Directed *problem* instances still communicate bidirectionally
/// (Section 1.5 of the paper), so a [`DiGraph`] is converted via its
/// underlying undirected graph.
#[derive(Clone, Debug)]
pub struct Network {
    adj: Vec<Vec<VertexId>>,
}

impl Network {
    /// Builds a network from an undirected graph.
    pub fn from_graph(g: &Graph) -> Self {
        let mut adj: Vec<Vec<VertexId>> = (0..g.num_vertices())
            .map(|v| g.neighbor_vertices(v).collect())
            .collect();
        for list in &mut adj {
            list.sort_unstable();
        }
        Network { adj }
    }

    /// Builds a network from a directed graph's underlying undirected
    /// graph (antiparallel edges become a single communication link).
    pub fn from_digraph(g: &DiGraph) -> Self {
        let (u, _) = g.underlying();
        Network::from_graph(&u)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of communication links.
    pub fn num_links(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// The sorted neighbor list of `v`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[v]
    }

    /// Whether `u` and `v` are directly connected.
    pub fn are_neighbors(&self, u: VertexId, v: VertexId) -> bool {
        self.adj[u].binary_search(&v).is_ok()
    }

    /// Maximum degree of the network.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_graph_sorts_neighbors() {
        let g = Graph::from_edges(4, [(2, 0), (0, 3), (0, 1)]);
        let net = Network::from_graph(&g);
        assert_eq!(net.neighbors(0), &[1, 2, 3]);
        assert_eq!(net.num_links(), 3);
        assert!(net.are_neighbors(3, 0));
        assert!(!net.are_neighbors(1, 2));
        assert_eq!(net.max_degree(), 3);
    }

    #[test]
    fn from_digraph_merges_directions() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 0), (1, 2)]);
        let net = Network::from_digraph(&g);
        assert_eq!(net.num_links(), 2);
        assert!(net.are_neighbors(0, 1));
    }
}
