//! Word-level encoding helpers for message payloads.
//!
//! Messages in the simulator are sequences of [`crate::Word`]s, each
//! standing for `Θ(log n)` bits. These helpers keep protocol code honest
//! about message sizes: everything a node sends must round-trip through
//! words, so "free" structured payloads can't sneak past the CONGEST
//! accounting.

use dsa_graphs::Ratio;

use crate::Word;

/// Builds a word-encoded payload.
///
/// # Example
///
/// ```
/// use dsa_runtime::{WordReader, WordWriter};
/// use dsa_graphs::Ratio;
///
/// let mut w = WordWriter::new();
/// w.push(7);
/// w.push_ratio(Ratio::new(3, 4));
/// w.push_list(&[10, 20, 30]);
/// let words = w.finish();
///
/// let mut r = WordReader::new(&words);
/// assert_eq!(r.read(), 7);
/// assert_eq!(r.read_ratio(), Ratio::new(3, 4));
/// assert_eq!(r.read_list(), vec![10, 20, 30]);
/// assert!(r.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct WordWriter {
    words: Vec<Word>,
}

impl WordWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        WordWriter::default()
    }

    /// Appends one word.
    pub fn push(&mut self, w: Word) {
        self.words.push(w);
    }

    /// Appends a signed value (two's complement in one word).
    pub fn push_i64(&mut self, v: i64) {
        self.words.push(v as u64);
    }

    /// Appends a rational as two words.
    pub fn push_ratio(&mut self, r: Ratio) {
        self.words.push(r.numerator());
        self.words.push(r.denominator());
    }

    /// Appends a length-prefixed list of words.
    pub fn push_list(&mut self, list: &[Word]) {
        self.words.push(list.len() as Word);
        self.words.extend_from_slice(list);
    }

    /// Appends a length-prefixed list of word pairs (e.g. edges).
    pub fn push_pair_list(&mut self, list: &[(Word, Word)]) {
        self.words.push(list.len() as Word);
        for &(a, b) in list {
            self.words.push(a);
            self.words.push(b);
        }
    }

    /// Number of words written so far.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether nothing was written.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Consumes the writer, returning the payload.
    pub fn finish(self) -> Vec<Word> {
        self.words
    }
}

/// Reads a word-encoded payload in the order it was written.
///
/// # Panics
///
/// All `read_*` methods panic on underflow — a protocol decoding error
/// is a programming bug, not a runtime condition.
#[derive(Debug)]
pub struct WordReader<'a> {
    words: &'a [Word],
    pos: usize,
}

impl<'a> WordReader<'a> {
    /// Creates a reader over `words`.
    pub fn new(words: &'a [Word]) -> Self {
        WordReader { words, pos: 0 }
    }

    /// Reads one word.
    pub fn read(&mut self) -> Word {
        let w = self.words[self.pos];
        self.pos += 1;
        w
    }

    /// Reads a signed value.
    pub fn read_i64(&mut self) -> i64 {
        self.read() as i64
    }

    /// Reads a rational (two words).
    pub fn read_ratio(&mut self) -> Ratio {
        let num = self.read();
        let den = self.read();
        Ratio::new(num, den)
    }

    /// Reads a length-prefixed list.
    pub fn read_list(&mut self) -> Vec<Word> {
        let len = self.read() as usize;
        (0..len).map(|_| self.read()).collect()
    }

    /// Reads a length-prefixed list of pairs.
    pub fn read_pair_list(&mut self) -> Vec<(Word, Word)> {
        let len = self.read() as usize;
        (0..len).map(|_| (self.read(), self.read())).collect()
    }

    /// Whether the payload is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.words.len()
    }

    /// Words remaining.
    pub fn remaining(&self) -> usize {
        self.words.len().saturating_sub(self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_everything() {
        let mut w = WordWriter::new();
        w.push(u64::MAX);
        w.push_i64(-5);
        w.push_ratio(Ratio::new(0, 7));
        w.push_pair_list(&[(1, 2), (3, 4)]);
        w.push_list(&[]);
        assert_eq!(w.len(), 1 + 1 + 2 + 5 + 1);
        let words = w.finish();

        let mut r = WordReader::new(&words);
        assert_eq!(r.read(), u64::MAX);
        assert_eq!(r.read_i64(), -5);
        assert_eq!(r.read_ratio(), Ratio::new(0, 7));
        assert_eq!(r.read_pair_list(), vec![(1, 2), (3, 4)]);
        assert_eq!(r.read_list(), Vec::<Word>::new());
        assert!(r.is_empty());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut r = WordReader::new(&[1]);
        r.read();
        r.read();
    }
}
