//! Property tests for the flow crate: the Goldberg reduction must agree
//! with exhaustive search on every small graph.

use dsa_flow::{densest_subgraph, densest_subgraph_brute_force};
use dsa_graphs::Ratio;
use proptest::bits::BitSetLike;
use proptest::prelude::*;

/// Strategy: a small random undirected simple graph as (n, edges).
fn small_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..=9).prop_flat_map(|n| {
        let all_pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let k = all_pairs.len();
        (Just(n), proptest::bits::bitset::between(0, k)).prop_map(move |(n, mask)| {
            let edges = all_pairs
                .iter()
                .enumerate()
                .filter(|(i, _)| mask.test(*i))
                .map(|(_, &e)| e)
                .collect();
            (n, edges)
        })
    })
}

proptest! {
    #[test]
    fn goldberg_matches_brute_force((n, edges) in small_graph()) {
        let fast = densest_subgraph(n, &edges);
        let slow = densest_subgraph_brute_force(n, &edges);
        match (fast, slow) {
            (None, None) => {}
            (Some(f), Some(s)) => {
                prop_assert_eq!(f.density, s.density);
                // The returned vertex set must actually achieve the density.
                let inside: Vec<bool> = {
                    let mut v = vec![false; n];
                    for &x in &f.vertices { v[x] = true; }
                    v
                };
                let count = edges.iter()
                    .filter(|&&(u, v)| inside[u] && inside[v])
                    .count() as u64;
                prop_assert_eq!(Ratio::new(count, f.vertices.len() as u64), f.density);
            }
            (f, s) => prop_assert!(false, "mismatch: fast={f:?} slow={s:?}"),
        }
    }

    #[test]
    fn densest_is_at_least_any_single_edge((n, edges) in small_graph()) {
        if let Some(best) = densest_subgraph(n, &edges) {
            // Any single edge's endpoints give density 1/2.
            prop_assert!(best.density >= Ratio::new(1, 2));
            prop_assert!(!best.vertices.is_empty());
        } else {
            prop_assert!(edges.is_empty());
        }
    }
}
