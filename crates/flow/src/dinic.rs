//! Dinic's max-flow algorithm on small integer-capacity networks.

use std::collections::VecDeque;

/// A flow network with integer capacities, solved with Dinic's
/// algorithm.
///
/// Capacities are `i64`; the densest-subgraph reduction scales rational
/// densities to integers, and the magnitudes involved (degree × density
/// denominator) stay far below `i64::MAX` for any graph this workspace
/// handles.
///
/// # Example
///
/// ```
/// use dsa_flow::MaxFlow;
///
/// let mut net = MaxFlow::new(4);
/// net.add_edge(0, 1, 3);
/// net.add_edge(0, 2, 2);
/// net.add_edge(1, 3, 2);
/// net.add_edge(2, 3, 3);
/// net.add_edge(1, 2, 1);
/// assert_eq!(net.max_flow(0, 3), 5);
/// ```
#[derive(Clone, Debug)]
pub struct MaxFlow {
    // Edges stored in pairs: edge 2k is forward, 2k+1 its reverse.
    to: Vec<usize>,
    cap: Vec<i64>,
    adj: Vec<Vec<usize>>,
    // Scratch for Dinic.
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl MaxFlow {
    /// Creates an empty network with `n` nodes.
    pub fn new(n: usize) -> Self {
        MaxFlow {
            to: Vec::new(),
            cap: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed edge `u -> v` with capacity `cap` (and its zero
    /// capacity reverse). Returns the edge index, usable with
    /// [`MaxFlow::flow_on`].
    ///
    /// # Panics
    ///
    /// Panics if `cap < 0` or an endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64) -> usize {
        assert!(cap >= 0, "negative capacity");
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "node out of range"
        );
        let id = self.to.len();
        self.to.push(v);
        self.cap.push(cap);
        self.adj[u].push(id);
        self.to.push(u);
        self.cap.push(0);
        self.adj[v].push(id + 1);
        id
    }

    /// Flow currently on edge `id` (residual bookkeeping: flow equals the
    /// capacity of the reverse edge).
    pub fn flow_on(&self, id: usize) -> i64 {
        self.cap[id ^ 1]
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &e in &self.adj[v] {
                let u = self.to[e];
                if self.cap[e] > 0 && self.level[u] < 0 {
                    self.level[u] = self.level[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, f: i64) -> i64 {
        if v == t {
            return f;
        }
        while self.iter[v] < self.adj[v].len() {
            let e = self.adj[v][self.iter[v]];
            let u = self.to[e];
            if self.cap[e] > 0 && self.level[u] == self.level[v] + 1 {
                let d = self.dfs(u, t, f.min(self.cap[e]));
                if d > 0 {
                    self.cap[e] -= d;
                    self.cap[e ^ 1] += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0
    }

    /// Computes the maximum `s`-`t` flow. May be called once per network
    /// (it mutates residual capacities).
    ///
    /// # Panics
    ///
    /// Panics if `s == t`.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        assert_ne!(s, t, "source equals sink");
        let mut flow = 0;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, i64::MAX);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }

    /// After [`MaxFlow::max_flow`], the set of nodes reachable from `s`
    /// in the residual network — the source side of a minimum cut.
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        let mut queue = VecDeque::new();
        seen[s] = true;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &e in &self.adj[v] {
                let u = self.to[e];
                if self.cap[e] > 0 && !seen[u] {
                    seen[u] = true;
                    queue.push_back(u);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_network() {
        // CLRS-style example.
        let mut net = MaxFlow::new(6);
        net.add_edge(0, 1, 16);
        net.add_edge(0, 2, 13);
        net.add_edge(1, 2, 10);
        net.add_edge(2, 1, 4);
        net.add_edge(1, 3, 12);
        net.add_edge(3, 2, 9);
        net.add_edge(2, 4, 14);
        net.add_edge(4, 3, 7);
        net.add_edge(3, 5, 20);
        net.add_edge(4, 5, 4);
        assert_eq!(net.max_flow(0, 5), 23);
    }

    #[test]
    fn disconnected_sink_gives_zero() {
        let mut net = MaxFlow::new(3);
        net.add_edge(0, 1, 10);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn min_cut_matches_flow() {
        let mut net = MaxFlow::new(4);
        let e01 = net.add_edge(0, 1, 2);
        let e02 = net.add_edge(0, 2, 2);
        net.add_edge(1, 3, 1);
        net.add_edge(2, 3, 5);
        let f = net.max_flow(0, 3);
        assert_eq!(f, 3);
        let side = net.min_cut_source_side(0);
        assert!(side[0]);
        assert!(!side[3]);
        // Vertex 1 is saturated downstream, so it stays on the source side.
        assert!(side[1]);
        assert_eq!(net.flow_on(e01), 1);
        assert_eq!(net.flow_on(e02), 2);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut net = MaxFlow::new(2);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 1, 2);
        assert_eq!(net.max_flow(0, 1), 3);
    }
}
