//! Goldberg's max-flow reduction for the densest-subgraph problem.

use dsa_graphs::Ratio;

use crate::MaxFlow;

/// A maximum-density subgraph: the vertex set (sorted) and its exact
/// density `|E(A)| / |A|`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Densest {
    /// The vertices of the densest subgraph, sorted increasingly.
    pub vertices: Vec<usize>,
    /// Its density.
    pub density: Ratio,
}

/// Computes a maximum-density subgraph of the graph on vertices `0..n`
/// with the given undirected `edges`, where the density of a vertex set
/// `A` is `|{e : both endpoints in A}| / |A|`.
///
/// Returns `None` when there are no edges (every subgraph has density 0,
/// and the spanner algorithm treats that vertex as having no candidate
/// star).
///
/// This is Goldberg's classic reduction: for a guess `g`, a network with
/// source capacities `deg(v)`, internal capacities 1 in both directions
/// per edge, and sink capacities `2g` has a minimum cut smaller than
/// `2|E|` iff some subgraph has density exceeding `g`. Densities are
/// multiples of `1/q` for `q ≤ n`, so a binary search over multiples of
/// `1/(n(n-1))` isolates the optimum exactly; all capacities are scaled
/// to integers so the search is precise.
///
/// # Panics
///
/// Panics if an edge references a vertex `>= n` or is a self-loop.
///
/// # Example
///
/// ```
/// use dsa_flow::densest_subgraph;
/// use dsa_graphs::Ratio;
///
/// // K4 minus an edge: the densest subgraph is the whole thing only if
/// // no triangle beats it. Triangle density 1 vs K4-minus-edge 5/4.
/// let edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)];
/// let best = densest_subgraph(4, &edges).unwrap();
/// assert_eq!(best.density, Ratio::new(5, 4));
/// assert_eq!(best.vertices, vec![0, 1, 2, 3]);
/// ```
pub fn densest_subgraph(n: usize, edges: &[(usize, usize)]) -> Option<Densest> {
    let weighted: Vec<(usize, usize, u64)> = edges.iter().map(|&(u, v)| (u, v, 1)).collect();
    densest_weighted_subgraph(&vec![1; n], &weighted)
}

/// Generalized densest subgraph: vertices carry positive weights,
/// edges carry positive multiplicities, and the density of a set `A` is
/// `Σ mult(e inside A) / Σ weight(v in A)`.
///
/// This is exactly the **densest v-star** objective for every variant of
/// Section 4 of the paper:
///
/// * unweighted 2-spanner — all weights and multiplicities 1;
/// * weighted 2-spanner — the weight of leaf `u` is `w({v, u})`
///   (leaves of weight 0 are modeled with weight 0, see below);
/// * directed 2-spanner — the weight of leaf `u` is the number of
///   directed star edges it contributes (1 or 2) and a pair's
///   multiplicity is the number of uncovered directed edges it 2-spans.
///
/// Vertex weights of **zero** are allowed (zero-weight edges of the
/// weighted problem): such vertices are free to include. The returned
/// subgraph is guaranteed to have positive total weight; if the only
/// positive-density sets had zero weight the function returns `None`
/// (the caller's invariants — weight-0 stars are pre-added to the
/// spanner — make that case mean "nothing left to span").
///
/// Returns `None` when `edges` is empty.
///
/// # Panics
///
/// Panics on out-of-range endpoints, self-loops, zero multiplicities,
/// or magnitudes large enough to overflow the scaled capacities
/// (`total_weight² · total_multiplicity` must fit in `i64`).
pub fn densest_weighted_subgraph(
    vertex_weights: &[u64],
    edges: &[(usize, usize, u64)],
) -> Option<Densest> {
    let n = vertex_weights.len();
    if edges.is_empty() {
        return None;
    }
    for &(u, v, mult) in edges {
        assert!(u < n && v < n, "edge ({u}, {v}) out of range");
        assert!(u != v, "self-loop ({u}, {v})");
        assert!(mult > 0, "zero multiplicity on ({u}, {v})");
    }
    let m: i64 = edges.iter().map(|&(_, _, mult)| mult as i64).sum();
    // Weighted degrees in the local graph.
    let mut deg = vec![0i64; n];
    for &(u, v, mult) in edges {
        deg[u] += mult as i64;
        deg[v] += mult as i64;
    }

    // Distinct densities p/q have q ≤ total weight, so they are
    // separated by at least 1/W² with W the total weight; search over
    // multiples of 1/d with d = W².
    let total_weight: i64 = vertex_weights.iter().map(|&w| w as i64).sum();
    let d = (total_weight * total_weight).max(2);
    assert!(
        m.checked_mul(d).and_then(|x| x.checked_mul(2)).is_some(),
        "instance too large for exact densest-subgraph arithmetic"
    );
    // Evaluate "exists subgraph with density > t/d" and return the
    // source-side witness if so.
    let test = |t: i64| -> Option<Vec<usize>> {
        // Capacities scaled by d: s->v: deg(v)*d, internal: mult*d,
        // v->sink: 2*t*weight(v).
        let s = n;
        let sink = n + 1;
        let mut net = MaxFlow::new(n + 2);
        for v in 0..n {
            if deg[v] > 0 {
                net.add_edge(s, v, deg[v] * d);
            }
            if vertex_weights[v] > 0 {
                net.add_edge(v, sink, 2 * t * vertex_weights[v] as i64);
            }
        }
        for &(u, v, mult) in edges {
            net.add_edge(u, v, mult as i64 * d);
            net.add_edge(v, u, mult as i64 * d);
        }
        let flow = net.max_flow(s, sink);
        if flow < 2 * m * d {
            let side = net.min_cut_source_side(s);
            let a: Vec<usize> = (0..n).filter(|&v| side[v]).collect();
            debug_assert!(!a.is_empty());
            Some(a)
        } else {
            None
        }
    };

    // Binary search for the largest t with a witness denser than t/d.
    // t = 0 always has a witness: some edge exists and its endpoint
    // pair has positive multiplicity inside, hence positive density.
    let mut lo = 0i64; // test(lo) succeeds
    let mut hi = m * d + 1; // density can't exceed m, so test(hi) fails
    let mut witness = test(0)?;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        match test(mid) {
            Some(a) => {
                witness = a;
                lo = mid;
            }
            None => hi = mid,
        }
    }
    let density = weighted_subgraph_density(&witness, vertex_weights, edges)?;
    Some(Densest {
        vertices: witness,
        density,
    })
}

/// Exact density of a vertex set, or `None` when its total weight is
/// zero (which the caller invariants rule out for witnesses).
fn weighted_subgraph_density(
    a: &[usize],
    vertex_weights: &[u64],
    edges: &[(usize, usize, u64)],
) -> Option<Ratio> {
    let mut inside = vec![false; vertex_weights.len()];
    for &x in a {
        inside[x] = true;
    }
    let count: u64 = edges
        .iter()
        .filter(|&&(u, v, _)| inside[u] && inside[v])
        .map(|&(_, _, mult)| mult)
        .sum();
    let weight: u64 = a.iter().map(|&v| vertex_weights[v]).sum();
    if weight == 0 {
        return None;
    }
    Some(Ratio::new(count, weight))
}

/// Exhaustive reference for the weighted problem: tries every non-empty
/// vertex subset of positive total weight. Only usable for `n <= 20`.
///
/// # Panics
///
/// Panics if there are more than 20 vertices.
pub fn densest_weighted_subgraph_brute_force(
    vertex_weights: &[u64],
    edges: &[(usize, usize, u64)],
) -> Option<Densest> {
    let n = vertex_weights.len();
    assert!(n <= 20, "brute force limited to 20 vertices");
    if edges.is_empty() {
        return None;
    }
    let mut best: Option<Densest> = None;
    for mask in 1u32..(1 << n) {
        let vertices: Vec<usize> = (0..n).filter(|&v| mask >> v & 1 == 1).collect();
        let Some(density) = weighted_subgraph_density(&vertices, vertex_weights, edges) else {
            continue;
        };
        if best.as_ref().is_none_or(|b| density > b.density) {
            best = Some(Densest { vertices, density });
        }
    }
    best
}

/// Exhaustive reference implementation for testing: tries every
/// non-empty vertex subset. Only usable for `n <= 20`.
///
/// Ties are broken toward the subset found first in increasing bitmask
/// order, so callers should compare densities, not vertex sets.
///
/// # Panics
///
/// Panics if `n > 20`.
pub fn densest_subgraph_brute_force(n: usize, edges: &[(usize, usize)]) -> Option<Densest> {
    assert!(n <= 20, "brute force limited to 20 vertices");
    if edges.is_empty() {
        return None;
    }
    let mut best: Option<Densest> = None;
    for mask in 1u32..(1 << n) {
        let count = edges
            .iter()
            .filter(|&&(u, v)| mask >> u & 1 == 1 && mask >> v & 1 == 1)
            .count() as u64;
        let size = mask.count_ones() as u64;
        let density = Ratio::new(count, size);
        if best.as_ref().is_none_or(|b| density > b.density) {
            best = Some(Densest {
                vertices: (0..n).filter(|&v| mask >> v & 1 == 1).collect(),
                density,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_edge_set_is_none() {
        assert_eq!(densest_subgraph(5, &[]), None);
        assert_eq!(densest_subgraph_brute_force(5, &[]), None);
    }

    #[test]
    fn single_edge() {
        let best = densest_subgraph(3, &[(0, 2)]).unwrap();
        assert_eq!(best.density, Ratio::new(1, 2));
        assert_eq!(best.vertices, vec![0, 2]);
    }

    #[test]
    fn clique_is_densest() {
        // K5: density (10)/5 = 2; any sub-clique is sparser.
        let mut edges = Vec::new();
        for u in 0..5 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let best = densest_subgraph(5, &edges).unwrap();
        assert_eq!(best.density, Ratio::new(2, 1));
        assert_eq!(best.vertices, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn prefers_dense_core_over_sparse_whole() {
        // Triangle plus two isolated vertices: the whole vertex set has
        // density 3/5 < 1, the triangle exactly 1.
        let edges = [(0, 1), (1, 2), (0, 2)];
        let best = densest_subgraph(5, &edges).unwrap();
        assert_eq!(best.vertices, vec![0, 1, 2]);
        assert_eq!(best.density, Ratio::new(1, 1));
    }

    #[test]
    fn tree_attachments_tie_at_density_one() {
        // Triangle plus pendant path: whole graph also has density 1;
        // either answer is a valid maximizer, but the density must be 1.
        let edges = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5)];
        let best = densest_subgraph(6, &edges).unwrap();
        assert_eq!(best.density, Ratio::new(1, 1));
    }

    #[test]
    fn matches_brute_force_on_fixed_cases() {
        let cases: Vec<(usize, Vec<(usize, usize)>)> = vec![
            (4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]),
            (5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]),
            (
                6,
                vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
            ),
            (7, vec![(0, 1), (2, 3), (4, 5), (5, 6), (4, 6), (1, 2)]),
        ];
        for (n, edges) in cases {
            let fast = densest_subgraph(n, &edges).unwrap();
            let slow = densest_subgraph_brute_force(n, &edges).unwrap();
            assert_eq!(fast.density, slow.density, "n={n} edges={edges:?}");
        }
    }
}

#[cfg(test)]
mod weighted_tests {
    use super::*;

    #[test]
    fn weighted_matches_brute_force() {
        // Star densities of the weighted 2-spanner problem: leaf weights
        // are edge weights; cheap leaves make sparse sets denser.
        let weights = vec![1, 10, 1, 3];
        let edges = vec![(0, 1, 1), (1, 2, 1), (0, 2, 1), (2, 3, 2)];
        let fast = densest_weighted_subgraph(&weights, &edges).unwrap();
        let slow = densest_weighted_subgraph_brute_force(&weights, &edges).unwrap();
        assert_eq!(fast.density, slow.density);
        // {0, 2}: one edge over weight 2 = 1/2; {0, 2, 3}: 3 units over
        // weight 5 = 3/5, the best.
        assert_eq!(fast.density, Ratio::new(3, 5));
    }

    #[test]
    fn zero_weight_vertices_are_free() {
        // Leaf 1 is free (weight 0): including it adds spanned pairs at
        // no cost. Pairs between zero-weight leaves never appear by the
        // caller invariant, so the pair (0,1) has the positive-weight
        // endpoint 0.
        let weights = vec![2, 0, 2];
        let edges = vec![(0, 1, 1), (1, 2, 1)];
        let best = densest_weighted_subgraph(&weights, &edges).unwrap();
        assert_eq!(best.vertices, vec![0, 1, 2]);
        assert_eq!(best.density, Ratio::new(2, 4));
    }

    #[test]
    fn multiplicities_count_directed_pairs() {
        // A pair spanning two directed edges counts twice in the
        // numerator: {0, 1} has density 2/2 = 1, and the whole set ties
        // at 3/3, so only the density is pinned down.
        let weights = vec![1, 1, 1];
        let edges = vec![(0, 1, 2), (1, 2, 1)];
        let best = densest_weighted_subgraph(&weights, &edges).unwrap();
        assert_eq!(best.density, Ratio::new(1, 1));
        // Dropping the second pair makes {0, 1} strictly densest.
        let best2 = densest_weighted_subgraph(&weights, &edges[..1]).unwrap();
        assert_eq!(best2.vertices, vec![0, 1]);
        assert_eq!(best2.density, Ratio::new(2, 2));
    }

    #[test]
    fn unweighted_delegates_consistently() {
        let edges = [(0usize, 1usize), (1, 2), (0, 2)];
        let a = densest_subgraph(3, &edges).unwrap();
        let weighted: Vec<_> = edges.iter().map(|&(u, v)| (u, v, 1)).collect();
        let b = densest_weighted_subgraph(&[1, 1, 1], &weighted).unwrap();
        assert_eq!(a, b);
    }
}
