//! Max-flow and densest-subgraph machinery.
//!
//! Section 4 of *Distributed Spanner Approximation* computes, at every
//! vertex `v`, the **densest v-star** with respect to the uncovered edges
//! between `v`'s neighbors. Choosing the leaf set `A ⊆ N(v)` of a star is
//! exactly choosing a vertex subset of the *local graph* on `N(v)` whose
//! edges are the uncovered edges, and the star's density `|C_S|/|S|` is
//! the classic subgraph density `|E(A)|/|A|`. The paper points to the
//! flow techniques of Gallo–Grigoriadis–Tarjan; we implement the
//! equivalent and better-known Goldberg reduction on top of
//! [Dinic's max-flow algorithm](MaxFlow).
//!
//! # Example
//!
//! ```
//! use dsa_flow::densest_subgraph;
//!
//! // A triangle {0,1,2} plus an isolated vertex 3: the densest subgraph
//! // is the triangle, with density 3/3 = 1 (the full vertex set only
//! // reaches 3/4).
//! let edges = [(0, 1), (1, 2), (0, 2)];
//! let best = densest_subgraph(4, &edges).unwrap();
//! assert_eq!(best.vertices, vec![0, 1, 2]);
//! assert_eq!(best.density, dsa_graphs::Ratio::new(1, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dinic;
mod goldberg;

pub use dinic::MaxFlow;
pub use goldberg::{
    densest_subgraph, densest_subgraph_brute_force, densest_weighted_subgraph,
    densest_weighted_subgraph_brute_force, Densest,
};
