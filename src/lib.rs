//! Umbrella crate for the PODC 2018 *Distributed Spanner Approximation*
//! reproduction. Re-exports the workspace crates so examples and
//! integration tests can use a single dependency.

#![forbid(unsafe_code)]

pub use dsa_core as core;
pub use dsa_flow as flow;
pub use dsa_graphs as graphs;
pub use dsa_lowerbounds as lowerbounds;
pub use dsa_mds as mds;
pub use dsa_runtime as runtime;
pub use dsa_service as service;
